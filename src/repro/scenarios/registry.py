"""Declarative scenario registry (mirrors ``repro.iostack.registry``).

Every workload the benchmarks can build lives here under a stable name:
the five hard-coded ``AMR*`` problem sizes (now ordinary built-in
scenarios whose defaults reproduce the old builders bit-for-bit) plus the
gated parameter-file scenarios.  The two gated file-dialect scenarios are
normalized *through their parsers at import time* -- the embedded
parameter text below is the source of truth, so the parsers themselves
are on the import path of every benchmark that uses them.

API shape is the iostack one: :func:`register` (duplicate names rejected),
:func:`get` (unknown names raise :class:`ScenarioError` with a
"choose from ..." message the CLI maps to exit 2), :func:`names`,
:func:`scenarios`, :func:`unregister`.
"""

from __future__ import annotations

from dataclasses import replace

from .enzo_dialect import normalize_enzo, parse_enzo
from .model import Scenario, ScenarioError
from .nyx_dialect import normalize_nyx, parse_nyx

__all__ = [
    "get",
    "names",
    "register",
    "scenarios",
    "unregister",
]

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Register a scenario under its name; duplicates are rejected."""
    scenario.validate()
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a registered scenario (tests use this to stay hermetic)."""
    _REGISTRY.pop(name, None)


def names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, in name order."""
    return tuple(_REGISTRY[n] for n in names())


def get(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises :class:`ScenarioError` (a ``ValueError``) with the same
    "choose from ..." message shape as ``EnzoConfig.root_dims`` so both
    the library and the CLI reject unknown workloads identically.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; choose from {list(names())}"
        ) from None


# ---------------------------------------------------------------------------
# Built-in scenarios.
# ---------------------------------------------------------------------------

#: The paper's five problem sizes.  Field defaults on :class:`Scenario`
#: replicate the historical ``build_workload`` arguments exactly, which is
#: what keeps every pre-scenario regression digest byte-identical.
for _edge in (16, 32, 64, 128, 256):
    register(Scenario(
        name=f"AMR{_edge}",
        description=f"paper problem size: {_edge}^3 root grid",
        root_dims=(_edge, _edge, _edge),
    ))


#: FOGGIE-style zoom-in (SNIPPETS.md section 1, scaled to gate size): two
#: static nested initial grids, a central must-refine region, and a deep
#: chain of zoom levels onto the densest spot.  Checkpoint-only cadence.
FOGGIE_NESTED_PARAMS = """\
# foggie-nested: deep nested zoom-in hierarchy (gate-sized FOGGIE analogue)
ProblemType                = 30      // cosmology simulation
TopGridRank                = 3
TopGridDimensions          = 32 32 32
MaximumRefinementLevel     = 5
CosmologySimulationNumberOfInitialGrids  = 3
CosmologySimulationGridDimension[1]      = 16 16 16
CosmologySimulationGridLeftEdge[1]       = 0.25 0.25 0.25
CosmologySimulationGridRightEdge[1]      = 0.5 0.5 0.5
CosmologySimulationGridLevel[1]          = 1
CosmologySimulationGridDimension[2]      = 16 16 16
CosmologySimulationGridLeftEdge[2]       = 0.3125 0.3125 0.3125
CosmologySimulationGridRightEdge[2]      = 0.4375 0.4375 0.4375
CosmologySimulationGridLevel[2]          = 2
MustRefineParticlesCreateParticles = 3
MustRefineParticlesRefineToLevel   = 2
dtDataDump 	 = 10
StopCycle        = 3
"""

register(replace(
    normalize_enzo(parse_enzo(FOGGIE_NESTED_PARAMS), name="foggie-nested"),
    description="deep nested zoom-in hierarchy (FOGGIE-style)",
    deep_levels=3,
))


#: Nyx-style mixed cadence (SNIPPETS.md section 3, scaled to gate size):
#: plot files every cycle, checkpoints every other cycle, a max_grid_size
#: cap, and redshift-triggered analysis dumps.
NYX_PLOTFILE_PARAMS = """\
# nyx-plotfile: mixed plot/checkpoint cadence (gate-sized Nyx analogue)
amr.max_level                       = 1
amr.max_grid_size                   = 16
amr.n_cell                          = 32 32 32
max_step                            = 4
nyx.initial_z                       = 200.0
nyx.final_z                         = 1.0
amr.plot_files_output               = 1
amr.plot_int                        = 1
amr.plot_vars                       = density temperature
amr.checkpoint_files_output         = 1
amr.check_int                       = 2
nyx.analysis_z_values               = 7.0
"""

register(replace(
    normalize_nyx(parse_nyx(NYX_PLOTFILE_PARAMS), name="nyx-plotfile"),
    description="mixed plot-file vs checkpoint cadence (Nyx-style)",
))


#: FLASH-X-motivated Lagrangian-particle-heavy restart: 8x the default
#: particle load shifts checkpoint payload from fields toward the ten
#: particle arrays, which is what stresses the restart read phase.
register(Scenario(
    name="flashx-particles",
    description="Lagrangian-particle-heavy restart (FLASH-X-style)",
    root_dims=(32, 32, 32),
    particles_per_cell=2.0,
    ncycles=3,
    checkpoint_every=1,
))
