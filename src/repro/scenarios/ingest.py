"""Load a scenario from a parameter file on disk, sniffing the dialect.

Dialect detection is structural, not extension-based: Nyx/AMReX inputs
are recognizable by their dotted namespaces (``amr.*``, ``nyx.*``,
``geometry.*``); anything else is treated as the Enzo dialect, whose
required ``TopGridDimensions`` key will reject non-parameter files with a
clear message.  All failures raise :class:`ScenarioError` so the CLI can
map "bad parameter file" uniformly to exit 2.
"""

from __future__ import annotations

import re
from pathlib import Path

from .enzo_dialect import normalize_enzo, parse_enzo
from .model import Scenario, ScenarioError
from .nyx_dialect import normalize_nyx, parse_nyx

__all__ = ["load_param_file", "parse_param_text", "sniff_dialect"]

_NYX_KEY = re.compile(r"^\s*(amr|nyx|geometry|gravity|insitu|fabarray|mg)\.")


def sniff_dialect(text: str) -> str:
    """Return ``"nyx"`` or ``"enzo"`` for a parameter-file body."""
    for line in text.splitlines():
        if _NYX_KEY.match(line):
            return "nyx"
    return "enzo"


def parse_param_text(text: str, *, name: str,
                     description: str = "") -> Scenario:
    """Parse + normalize parameter text in whichever dialect it is."""
    if sniff_dialect(text) == "nyx":
        return normalize_nyx(parse_nyx(text), name=name,
                             description=description)
    return normalize_enzo(parse_enzo(text), name=name,
                          description=description)


def load_param_file(path: str | Path, *, name: str | None = None) -> Scenario:
    """Load, parse, and normalize one parameter file."""
    p = Path(path)
    if p.is_dir():
        raise ScenarioError(f"parameter file {p} is a directory")
    if not p.exists():
        raise ScenarioError(f"parameter file {p} not found")
    try:
        text = p.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read parameter file {p}: {exc}") from exc
    scenario = parse_param_text(text, name=name or p.stem,
                                description=f"loaded from {p.name}")
    return scenario
