"""Nyx/AMReX-style ``amr.*`` parameter-file dialect.

The grammar follows real Nyx inputs files (see the LyA example under
``examples/scenarios/``): dotted namespaced keys (``amr.n_cell``,
``nyx.initial_z``, ``geometry.prob_hi``), full-line ``#`` comments,
multi-token values, values containing slashes (``amr.plot_file = 1/plt``)
and quoted strings (``amr.probin_file = ""``).  A final truncated line
consisting of one bare key with no ``=`` (real files end mid-edit like
this) parses as an empty value; a multi-token line with no ``=`` is a
syntax error.

Unknown keys are tolerated.  Normalization maps AMReX's step-based dump
cadence (``amr.plot_int`` / ``amr.check_int`` gated by the
``*_files_output`` switches) onto the model's per-cycle streams.
"""

from __future__ import annotations

import re

from .model import Scenario, ScenarioError
from .enzo_dialect import MAX_CYCLES

__all__ = ["parse_nyx", "normalize_nyx", "emit_nyx"]

_KEY_RE = re.compile(r"^[A-Za-z_][\w]*(\.[\w.]+)*$")


def parse_nyx(text: str) -> dict[str, str]:
    """Parse Nyx dialect text into a raw ``{key: value}`` map."""
    raw: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "=" in stripped:
            key, value = stripped.split("=", 1)
            key, value = key.strip(), value.strip()
        else:
            parts = stripped.split()
            if len(parts) > 1:
                raise ScenarioError(
                    f"line {lineno}: {stripped!r} has several tokens but "
                    "no '=' (not a key = value assignment)"
                )
            key, value = parts[0], ""
        if not _KEY_RE.match(key):
            raise ScenarioError(f"line {lineno}: bad parameter key {key!r}")
        raw[key] = value
    return raw


def _int(raw: dict[str, str], key: str, default: int | None = None) -> int:
    if key not in raw or raw[key] == "":
        if default is None:
            raise ScenarioError(f"missing required key {key}")
        return default
    try:
        return int(raw[key])
    except ValueError:
        raise ScenarioError(
            f"{key} = {raw[key]!r}: expected an integer"
        ) from None


def _float(raw: dict[str, str], key: str, default: float = 0.0) -> float:
    if key not in raw or raw[key] == "":
        return default
    try:
        return float(raw[key])
    except ValueError:
        raise ScenarioError(
            f"{key} = {raw[key]!r}: expected a number"
        ) from None


def normalize_nyx(raw: dict[str, str], *, name: str,
                  description: str = "") -> Scenario:
    """Normalize a raw Nyx key map into a canonical :class:`Scenario`.

    Normalization rules (documented in docs/architecture.md section 15):

    * ``amr.n_cell`` -> ``root_dims``; ``amr.max_level`` -> ``max_level``;
      ``amr.max_grid_size`` -> ``max_grid_size`` (rejected below the
      stripe-ish minimum).
    * ``max_step`` -> ``ncycles``, clamped to the model's cycle budget.
    * The plot stream runs iff ``amr.plot_files_output`` is nonzero, the
      checkpoint stream iff ``amr.checkpoint_files_output`` is nonzero
      (both default on, as in AMReX).  ``amr.plot_int``/``amr.check_int``
      are step intervals; the model divides both by the smallest enabled
      interval so the densest stream fires every cycle and the cadence
      *ratio* -- the thing the I/O analysis cares about -- is preserved.
    * ``amr.plot_vars`` -> ``plot_fields`` (``ALL``/``NONE`` map to the
      full set / the density-only default).
    * ``nyx.initial_z``/``nyx.final_z`` -> the redshift range;
      ``nyx.analysis_z_values`` -> ``output_redshifts``, keeping only
      values inside the range.
    """
    if "amr.n_cell" not in raw:
        raise ScenarioError(f"{name}: missing amr.n_cell")
    try:
        root_dims = tuple(int(tok) for tok in raw["amr.n_cell"].split())
    except ValueError:
        raise ScenarioError(
            f"amr.n_cell = {raw['amr.n_cell']!r}: expected integers"
        ) from None
    if len(root_dims) != 3:
        raise ScenarioError(
            f"amr.n_cell = {raw['amr.n_cell']!r}: expected 3 values"
        )

    max_level = _int(raw, "amr.max_level", 4)
    max_grid_size = _int(raw, "amr.max_grid_size", 0)
    ncycles = max(1, min(MAX_CYCLES, _int(raw, "max_step", 3)))

    plot_on = bool(_int(raw, "amr.plot_files_output", 1))
    check_on = bool(_int(raw, "amr.checkpoint_files_output", 1))
    plot_int = max(1, _int(raw, "amr.plot_int", 1))
    check_int = max(1, _int(raw, "amr.check_int", 1))
    enabled = [iv for iv, on in ((plot_int, plot_on), (check_int, check_on))
               if on]
    if enabled:
        unit = min(enabled)
        plot_every = max(1, round(plot_int / unit)) if plot_on else 0
        checkpoint_every = max(1, round(check_int / unit)) if check_on else 0
    else:
        plot_every = checkpoint_every = 0

    plot_fields: tuple[str, ...] = ("density",)
    vars_spec = raw.get("amr.plot_vars", "").strip()
    if vars_spec and vars_spec.upper() not in ("ALL", "NONE"):
        plot_fields = tuple(vars_spec.split())
    elif vars_spec.upper() == "ALL":
        from ..amr.fields import BARYON_FIELDS
        plot_fields = tuple(BARYON_FIELDS)

    initial_z = _float(raw, "nyx.initial_z")
    final_z = _float(raw, "nyx.final_z")
    redshifts: tuple[float, ...] = ()
    z_spec = raw.get("nyx.analysis_z_values", "").strip()
    if z_spec:
        try:
            values = tuple(float(tok) for tok in z_spec.split())
        except ValueError:
            raise ScenarioError(
                f"nyx.analysis_z_values = {z_spec!r}: expected numbers"
            ) from None
        redshifts = tuple(sorted(
            (z for z in values if final_z <= z <= initial_z), reverse=True))

    return Scenario(
        name=name,
        description=description,
        source_dialect="nyx",
        root_dims=root_dims,
        max_level=max_level,
        max_grid_size=max_grid_size,
        ncycles=ncycles,
        checkpoint_every=checkpoint_every,
        plot_every=plot_every,
        plot_fields=plot_fields,
        output_redshifts=redshifts,
        initial_redshift=initial_z,
        final_redshift=final_z,
    ).validate()


def emit_nyx(scenario: Scenario) -> str:
    """Write a scenario back out in the Nyx dialect (round-trip tests)."""
    lines = [
        f"# {scenario.name}: {scenario.description or 'scenario'}",
        "amr.max_level                       = "
        f"{scenario.max_level}",
        "amr.n_cell                          = {} {} {}".format(
            *scenario.root_dims),
        f"max_step                            = {scenario.ncycles}",
    ]
    if scenario.max_grid_size:
        lines.insert(2, "amr.max_grid_size                   = "
                     f"{scenario.max_grid_size}")
    lines += [
        "amr.plot_files_output               = "
        f"{1 if scenario.plot_every else 0}",
        f"amr.plot_int                        = {scenario.plot_every or 1}",
        "amr.plot_vars                       = "
        f"{' '.join(scenario.plot_fields)}",
        "amr.checkpoint_files_output         = "
        f"{1 if scenario.checkpoint_every else 0}",
        "amr.check_int                       = "
        f"{scenario.checkpoint_every or 1}",
    ]
    if scenario.initial_redshift or scenario.final_redshift:
        lines += [
            f"nyx.initial_z                       = {scenario.initial_redshift}",
            f"nyx.final_z                         = {scenario.final_redshift}",
        ]
    if scenario.output_redshifts:
        lines.append(
            "nyx.analysis_z_values               = "
            + " ".join(str(z) for z in scenario.output_redshifts))
    return "\n".join(lines) + "\n"
