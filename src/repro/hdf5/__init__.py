"""Parallel HDF5-like library over the MPI-IO layer.

Reproduces the official-release-2002 behaviours the paper measured:
collective dataset create/close synchronisation, metadata/data interleaving,
recursive hyperslab packing cost, rank-0-only attribute writes.
"""

from .dataspace import Dataspace, Hyperslab
from .file import H5Costs, H5Dataset, H5File
from .format import HEADER_CAPACITY, ObjectHeader

__all__ = [
    "H5File",
    "H5Dataset",
    "H5Costs",
    "Dataspace",
    "Hyperslab",
    "ObjectHeader",
    "HEADER_CAPACITY",
]
