"""Dataspaces and hyperslab selections.

A dataspace is the n-D extent of a dataset; a hyperslab selects a regular
region of it: ``count`` blocks of ``block`` elements spaced ``stride`` apart
in each dimension, starting at ``start`` (H5Sselect_hyperslab semantics;
``stride=None``/``block=None`` default to 1, giving the plain subarray case
the ENZO port uses).

:meth:`Hyperslab.file_runs` flattens a selection into contiguous element
runs of the row-major dataset -- the unit the paper's "recursive hyperslab
packing" overhead is charged per.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["Dataspace", "Hyperslab"]


@dataclass(frozen=True)
class Dataspace:
    """The extent of a dataset: an n-D shape (row-major storage)."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        if not self.shape:
            raise ValueError("zero-rank dataspace")
        if any(s < 0 for s in self.shape):
            raise ValueError("negative extent")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def npoints(self) -> int:
        return int(np.prod(self.shape))

    def select_all(self) -> "Hyperslab":
        return Hyperslab(start=(0,) * self.rank, count=self.shape)


@dataclass(frozen=True)
class Hyperslab:
    """A regular selection within a dataspace."""

    start: tuple[int, ...]
    count: tuple[int, ...]
    stride: Optional[tuple[int, ...]] = None
    block: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        start = tuple(int(s) for s in self.start)
        count = tuple(int(c) for c in self.count)
        rank = len(start)
        if len(count) != rank:
            raise ValueError("start/count rank mismatch")
        stride = (
            tuple(int(s) for s in self.stride) if self.stride is not None
            else (1,) * rank
        )
        block = (
            tuple(int(b) for b in self.block) if self.block is not None
            else (1,) * rank
        )
        if len(stride) != rank or len(block) != rank:
            raise ValueError("stride/block rank mismatch")
        if any(s < 0 for s in start) or any(c < 0 for c in count):
            raise ValueError("negative start or count")
        if any(s < 1 for s in stride) or any(b < 1 for b in block):
            raise ValueError("stride and block must be >= 1")
        if any(b > s for b, s in zip(block, stride)):
            raise ValueError("block larger than stride would overlap")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "stride", stride)
        object.__setattr__(self, "block", block)

    @property
    def rank(self) -> int:
        return len(self.start)

    @property
    def selection_shape(self) -> tuple[int, ...]:
        """Shape of the selected data when packed into memory."""
        return tuple(c * b for c, b in zip(self.count, self.block))

    @property
    def npoints(self) -> int:
        return int(np.prod(self.selection_shape))

    def extent_needed(self) -> tuple[int, ...]:
        """Minimal dataspace shape containing the selection."""
        out = []
        for st, c, sr, b in zip(self.start, self.count, self.stride, self.block):
            out.append(st + (c - 1) * sr + b if c > 0 else st)
        return tuple(out)

    def _indices(self, dim: int) -> np.ndarray:
        """Selected coordinates along ``dim``, in order."""
        st, c, sr, b = (
            self.start[dim],
            self.count[dim],
            self.stride[dim],
            self.block[dim],
        )
        base = st + np.arange(c, dtype=np.int64) * sr
        return (base[:, None] + np.arange(b, dtype=np.int64)[None, :]).ravel()

    def validate_within(self, space: Dataspace) -> None:
        if self.rank != space.rank:
            raise ValueError(
                f"selection rank {self.rank} != dataspace rank {space.rank}"
            )
        for dim, (need, have) in enumerate(zip(self.extent_needed(), space.shape)):
            if need > have:
                raise ValueError(
                    f"selection exceeds dataspace in dim {dim}: {need} > {have}"
                )

    def file_runs(self, space: Dataspace) -> tuple[np.ndarray, int]:
        """Flatten into element runs of the row-major dataset.

        Returns ``(run_starts, run_length)``: every run has the same length
        (contiguity along the last axis), in element units, sorted ascending.
        """
        self.validate_within(space)
        if self.npoints == 0:
            return np.empty(0, dtype=np.int64), 0
        shape = space.shape
        strides = np.empty(len(shape), dtype=np.int64)
        strides[-1] = 1
        for i in range(len(shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * shape[i + 1]
        # Along the last axis, each block of ``block[-1]`` elements is a run;
        # if stride[-1] == block[-1] the whole axis selection is dense and
        # count[-1] blocks merge into one run.
        last_dense = self.stride[-1] == self.block[-1] or self.count[-1] == 1
        if last_dense:
            run_len = self.count[-1] * self.block[-1] if self.stride[-1] == self.block[-1] else self.block[-1]
            last_starts = np.array([self.start[-1]], dtype=np.int64)
            if self.count[-1] > 1 and self.stride[-1] != self.block[-1]:
                last_starts = (
                    self.start[-1]
                    + np.arange(self.count[-1], dtype=np.int64) * self.stride[-1]
                )
        else:
            run_len = self.block[-1]
            last_starts = (
                self.start[-1]
                + np.arange(self.count[-1], dtype=np.int64) * self.stride[-1]
            )
        outer = [self._indices(d) for d in range(self.rank - 1)]
        if outer:
            grids = np.meshgrid(*outer, indexing="ij")
            base = np.zeros(grids[0].shape, dtype=np.int64)
            for g, sk in zip(grids, strides[:-1]):
                base += g * sk
            base = base.ravel()
        else:
            base = np.zeros(1, dtype=np.int64)
        starts = (base[:, None] + last_starts[None, :]).ravel()
        starts.sort()
        return starts, int(run_len)
