"""On-disk format of the simulated HDF5 files.

Deliberately mirrors the property of real HDF5 the paper criticises:
**metadata and array data live interleaved in the same file**.  Every
dataset's object header is allocated inline right before its data, so data
offsets are not aligned to any file-system boundary ("the real data ill
alignment on appropriate boundaries"), and small metadata writes land
between large data writes.

Layout::

    0          : superblock -- magic(8) "\\x89SDF5\\r\\n", version u32,
                 root table offset u64, root entry count u32
    ...        : per dataset: object header (fixed capacity), then data
    root table : at close, (name -> header offset) entries

Object header (capacity ``HEADER_CAPACITY`` bytes, updated in place)::

    used u32, name_len u16, name, dtype_code u8, rank u8, dims u64*rank,
    data_offset u64, data_nbytes u64, nattrs u16,
    then per attribute: name_len u16, name, value_len u16, value(pickle)
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field

import numpy as np

from ..hdf4.format import CODE_DTYPES, DTYPE_CODES

__all__ = [
    "MAGIC",
    "SUPERBLOCK_SIZE",
    "HEADER_CAPACITY",
    "ObjectHeader",
    "pack_superblock",
    "unpack_superblock",
    "pack_root_table",
    "unpack_root_table",
]

MAGIC = b"\x89SDF5\r\n\x00"
_SUPER = struct.Struct("<8sIQI")
SUPERBLOCK_SIZE = _SUPER.size
HEADER_CAPACITY = 512


def pack_superblock(root_offset: int, root_count: int, version: int = 1) -> bytes:
    return _SUPER.pack(MAGIC, version, root_offset, root_count)


def unpack_superblock(raw: bytes) -> tuple[int, int, int]:
    magic, version, root_offset, root_count = _SUPER.unpack(raw[:SUPERBLOCK_SIZE])
    if magic != MAGIC:
        raise ValueError(f"not an SDF5 file (magic {magic!r})")
    return version, root_offset, root_count


def pack_root_table(entries: list[tuple[str, int]]) -> bytes:
    parts = []
    for name, offset in entries:
        nb = name.encode("utf-8")
        parts.append(struct.pack("<H", len(nb)))
        parts.append(nb)
        parts.append(struct.pack("<Q", offset))
    return b"".join(parts)


def unpack_root_table(raw: bytes, count: int) -> list[tuple[str, int]]:
    out = []
    pos = 0
    for _ in range(count):
        (nlen,) = struct.unpack_from("<H", raw, pos)
        pos += 2
        name = raw[pos : pos + nlen].decode("utf-8")
        pos += nlen
        (offset,) = struct.unpack_from("<Q", raw, pos)
        pos += 8
        out.append((name, offset))
    return out


@dataclass
class ObjectHeader:
    """A dataset's header: identity, layout, attributes."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    data_offset: int
    data_nbytes: int
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dtype = np.dtype(self.dtype)
        self.shape = tuple(int(s) for s in self.shape)
        if self.dtype not in DTYPE_CODES:
            raise TypeError(f"unsupported dtype {self.dtype}")

    def pack(self) -> bytes:
        nb = self.name.encode("utf-8")
        parts = [
            struct.pack("<H", len(nb)),
            nb,
            struct.pack("<BB", DTYPE_CODES[self.dtype], len(self.shape)),
            struct.pack(f"<{len(self.shape)}Q", *self.shape),
            struct.pack("<QQ", self.data_offset, self.data_nbytes),
            struct.pack("<H", len(self.attrs)),
        ]
        for aname, avalue in self.attrs.items():
            ab = aname.encode("utf-8")
            vb = pickle.dumps(avalue, protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(struct.pack("<H", len(ab)))
            parts.append(ab)
            parts.append(struct.pack("<H", len(vb)))
            parts.append(vb)
        body = b"".join(parts)
        blob = struct.pack("<I", len(body)) + body
        if len(blob) > HEADER_CAPACITY:
            raise ValueError(
                f"object header for {self.name!r} exceeds capacity "
                f"({len(blob)} > {HEADER_CAPACITY}); too many/large attributes"
            )
        return blob + b"\0" * (HEADER_CAPACITY - len(blob))

    @classmethod
    def unpack(cls, raw: bytes) -> "ObjectHeader":
        (used,) = struct.unpack_from("<I", raw, 0)
        pos = 4
        (nlen,) = struct.unpack_from("<H", raw, pos)
        pos += 2
        name = raw[pos : pos + nlen].decode("utf-8")
        pos += nlen
        code, rank = struct.unpack_from("<BB", raw, pos)
        pos += 2
        shape = struct.unpack_from(f"<{rank}Q", raw, pos)
        pos += 8 * rank
        data_offset, data_nbytes = struct.unpack_from("<QQ", raw, pos)
        pos += 16
        (nattrs,) = struct.unpack_from("<H", raw, pos)
        pos += 2
        attrs = {}
        for _ in range(nattrs):
            (alen,) = struct.unpack_from("<H", raw, pos)
            pos += 2
            aname = raw[pos : pos + alen].decode("utf-8")
            pos += alen
            (vlen,) = struct.unpack_from("<H", raw, pos)
            pos += 2
            attrs[aname] = pickle.loads(raw[pos : pos + vlen])
            pos += vlen
        if pos != used + 4:
            raise ValueError("corrupt object header")
        return cls(name, CODE_DTYPES[code], shape, data_offset, data_nbytes, attrs)
