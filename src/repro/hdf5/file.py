"""The parallel HDF5-like library: files, datasets, hyperslab I/O.

The API follows the H5F/H5D surface the ENZO HDF5 port needs, with the
*official-release-circa-2002* behaviours the paper measured built in:

1. **dataset create/close synchronise all ranks** -- both are collective
   with an internal barrier and rank-0 metadata writes;
2. **metadata lives in the data file** -- object headers are allocated
   inline before each dataset's data, so data starts at unaligned offsets
   and every create issues a small metadata write between data writes;
3. **hyperslab packing is recursive** -- selections are charged a per-run
   CPU cost on top of the memcpy, making fine-grained selections expensive;
4. **attributes are written by rank 0 only** -- other ranks wait.

Data access itself goes through the MPI-IO layer (the mpio driver), exactly
as parallel HDF5 sits on ROMIO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..mpi.datatypes import merge_segments
from ..mpiio.adio import ADIOFile
from ..mpiio.hints import Hints
from ..mpiio.sieving import sieve_read, sieve_write
from ..mpiio.two_phase import collective_read, collective_write
from ..pfs.base import FileSystem
from .dataspace import Dataspace, Hyperslab
from .format import (
    HEADER_CAPACITY,
    SUPERBLOCK_SIZE,
    ObjectHeader,
    pack_root_table,
    pack_superblock,
    unpack_root_table,
    unpack_superblock,
)

__all__ = ["H5File", "H5Dataset", "H5Costs"]


@dataclass
class H5Costs:
    """CPU overheads of the library (per rank, seconds).

    ``alignment`` is the later ``H5Pset_alignment`` remedy for the paper's
    misalignment complaint: data regions are allocated at multiples of the
    given boundary (0 = the 2002 behaviour, data packed right after its
    object header).  Set it to the file system's stripe size to stop data
    regions straddling stripe/lock boundaries.  Like ``H5Pset_alignment``,
    only objects of at least ``alignment_threshold`` bytes are moved to a
    boundary -- padding every few-KB subgrid dataset out to a stripe would
    riddle the file with holes and cost a seek per write.
    """

    dataset_create: float = 4e-3  # metadata allocation + flush at creation
    dataset_close: float = 1e-3
    attribute_write: float = 2e-3
    pack_per_run: float = 15e-6  # recursive hyperslab iteration, per run
    open_close: float = 1e-3
    alignment: int = 0
    alignment_threshold: int = 0


class H5Dataset:
    """An open dataset handle (one per rank; operations may be collective)."""

    def __init__(self, f: "H5File", header: ObjectHeader, header_offset: int):
        self._f = f
        self.header = header
        self._header_offset = header_offset
        self.space = Dataspace(header.shape)
        self._closed = False

    @property
    def name(self) -> str:
        return self.header.name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.header.shape

    @property
    def dtype(self) -> np.dtype:
        return self.header.dtype

    # -- selection plumbing ---------------------------------------------------

    def file_segments(
        self, selection: Optional[Hyperslab] = None
    ) -> list[tuple[int, int]]:
        """The (file_offset, nbytes) byte segments a selection occupies.

        Pure address arithmetic, no simulated cost -- usable by manifest
        builders that need the layout without re-charging the packing CPU
        time the actual I/O already paid.
        """
        sel = selection if selection is not None else self.space.select_all()
        starts, run_len = sel.file_runs(self.space)
        item = self.dtype.itemsize
        base = self.header.data_offset
        segs = [(base + int(s) * item, run_len * item) for s in starts]
        return merge_segments(segs)

    def _segments(self, selection: Optional[Hyperslab]) -> list[tuple[int, int]]:
        sel = selection if selection is not None else self.space.select_all()
        starts, _run_len = sel.file_runs(self.space)
        # Charge the recursive hyperslab packing cost.
        self._f.comm.compute(len(starts) * self._f.costs.pack_per_run)
        return self.file_segments(sel)

    def _check_buffer(self, data: np.ndarray, selection: Optional[Hyperslab]):
        sel = selection if selection is not None else self.space.select_all()
        want = sel.selection_shape
        if tuple(data.shape) != tuple(want):
            raise ValueError(f"buffer shape {data.shape} != selection {want}")
        if data.dtype != self.dtype:
            raise TypeError(f"buffer dtype {data.dtype} != dataset {self.dtype}")

    # -- I/O ----------------------------------------------------------------------

    def write(
        self,
        data: np.ndarray,
        selection: Optional[Hyperslab] = None,
        *,
        collective: bool = True,
    ) -> None:
        """Write ``data`` into ``selection`` (defaults to the whole dataset).

        ``collective=True`` uses two-phase MPI-IO and must be called by all
        ranks of the file's communicator; independent mode writes alone.
        """
        self._check_open()
        data = np.asarray(data)
        self._check_buffer(data, selection)
        data = np.ascontiguousarray(data)
        segs = self._segments(selection)
        if collective and self._f.parallel:
            collective_write(self._f.comm, self._f.adio, segs, data, self._f.hints)
        else:
            sieve_write(self._f.adio, segs, data, self._f.hints)

    def read(
        self,
        selection: Optional[Hyperslab] = None,
        *,
        collective: bool = True,
    ) -> np.ndarray:
        """Read ``selection`` (defaults to all); returns a packed array."""
        self._check_open()
        sel = selection if selection is not None else self.space.select_all()
        segs = self._segments(selection)
        if collective and self._f.parallel:
            raw = collective_read(self._f.comm, self._f.adio, segs, self._f.hints)
        else:
            raw = sieve_read(self._f.adio, segs, self._f.hints)
        return (
            np.frombuffer(raw, dtype=self.dtype).reshape(sel.selection_shape).copy()
        )

    # -- attributes -----------------------------------------------------------------

    def write_attr(self, name: str, value) -> None:
        """Write an attribute.  Collective; only rank 0 touches the file."""
        self._check_open()
        f = self._f
        f.comm.compute(f.costs.attribute_write)
        if f.parallel:
            coll.barrier(f.comm)  # paper: attr creation limits parallelism
        self.header.attrs[name] = value
        if f.meta_aggregation and f.mode == "w":
            f._defer_header(self.header.name)
        elif f.comm.rank == 0 or not f.parallel:
            f.adio.write_contig(self._header_offset, self.header.pack())
        if f.parallel:
            coll.barrier(f.comm)

    @property
    def attrs(self) -> dict:
        return dict(self.header.attrs)

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Collective close: internal synchronisation (paper overhead #1)."""
        if self._closed:
            return
        f = self._f
        f.comm.compute(f.costs.dataset_close)
        if f.parallel:
            coll.barrier(f.comm)
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"dataset {self.name!r} is closed")


class H5File:
    """An HDF5-like file, opened either serially (sec2) or in parallel (mpio)."""

    def __init__(
        self,
        comm: Comm,
        adio: ADIOFile,
        mode: str,
        *,
        parallel: bool,
        hints: Hints,
        costs: H5Costs,
        meta_aggregation: bool = False,
    ):
        self.comm = comm
        self.adio = adio
        self.mode = mode
        self.parallel = parallel
        self.hints = hints
        self.costs = costs
        # The paper's Section 5 remedy for small interleaved metadata
        # writes: defer every object-header write and flush them all as one
        # list-I/O request at file close (what later HDF5 releases call
        # metadata aggregation).  Off by default -- the 2002 behaviour.
        self.meta_aggregation = meta_aggregation
        self._deferred: list[str] = []
        self._headers: dict[str, tuple[ObjectHeader, int]] = {}
        self._order: list[str] = []
        self._alloc = SUPERBLOCK_SIZE
        self._open = True
        if mode == "r":
            self._load()

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, comm: Comm, path: str, **kw) -> "H5File":
        return cls._open_impl(comm, path, "w", **kw)

    @classmethod
    def open(cls, comm: Comm, path: str, mode: str = "r", **kw) -> "H5File":
        return cls._open_impl(comm, path, mode, **kw)

    @classmethod
    def _open_impl(
        cls,
        comm: Comm,
        path: str,
        mode: str,
        *,
        driver: str = "mpio",
        fs: Optional[FileSystem] = None,
        hints: Optional[Hints] = None,
        costs: Optional[H5Costs] = None,
        retry=None,
        aio=None,
        meta_aggregation: bool = False,
    ) -> "H5File":
        if mode not in ("r", "w"):
            raise ValueError(f"bad mode {mode!r}")
        if driver not in ("mpio", "sec2"):
            raise ValueError(f"unknown driver {driver!r}")
        fs = fs if fs is not None else comm.machine.fs
        if fs is None:
            raise ValueError("no file system attached to the machine")
        parallel = driver == "mpio"
        costs = costs or H5Costs()
        comm.compute(costs.open_close)
        proc = comm.proc
        node = comm.machine.node_of(comm.group[comm.rank])
        if parallel:
            if comm.rank == 0:
                proc.schedule_point()
                done = (
                    fs.create(path, node=node, ready_time=proc.clock)
                    if mode == "w"
                    else fs.open(path, node=node, ready_time=proc.clock)
                )
                proc.advance_to(done)
            coll.barrier(comm)
            if comm.rank != 0:
                proc.schedule_point()
                done = fs.open(path, node=node, ready_time=proc.clock)
                proc.advance_to(done)
        else:
            proc.schedule_point()
            done = (
                fs.create(path, node=node, ready_time=proc.clock)
                if mode == "w"
                else fs.open(path, node=node, ready_time=proc.clock)
            )
            proc.advance_to(done)
        return cls(
            comm,
            ADIOFile(fs, path, comm, retry=retry, aio=aio if mode == "w" else None),
            mode,
            parallel=parallel,
            hints=(hints or Hints()).validate(),
            costs=costs,
            meta_aggregation=meta_aggregation,
        )

    def close(self) -> None:
        """Flush the root table and superblock; collective in mpio mode."""
        if not self._open:
            return
        self.comm.compute(self.costs.open_close)
        if self.mode == "w":
            if self.parallel:
                coll.barrier(self.comm)
            if self.comm.rank == 0 or not self.parallel:
                self._flush_deferred_headers()
                table = pack_root_table(
                    [(n, self._headers[n][1]) for n in self._order]
                )
                self.adio.write_contig(self._alloc, table)
                self.adio.write_contig(
                    0, pack_superblock(self._alloc, len(self._order))
                )
        if self.parallel:
            coll.barrier(self.comm)
        self.adio.close()
        self._open = False

    # -- datasets ------------------------------------------------------------------

    def create_dataset(self, name: str, shape, dtype) -> H5Dataset:
        """Create a dataset.  Collective in mpio mode (paper overhead #1).

        The object header is allocated inline, immediately followed by the
        data region (paper overhead #2: interleaving and misalignment).
        """
        self._check_writable()
        if name in self._headers:
            raise ValueError(f"dataset {name!r} already exists")
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        self.comm.compute(self.costs.dataset_create)
        if self.parallel:
            coll.barrier(self.comm)  # internal sync at creation
        header_offset = self._alloc
        if self.meta_aggregation:
            # Aggregated metadata lives in its own contiguous block written
            # at close (offset assigned then); data regions pack back to
            # back with no inline header holes between them.
            data_offset = self._alloc
        else:
            data_offset = header_offset + HEADER_CAPACITY
        if self.costs.alignment > 1 and nbytes >= self.costs.alignment_threshold:
            a = self.costs.alignment
            data_offset = -(-data_offset // a) * a
        header = ObjectHeader(name, dtype, shape, data_offset, nbytes)
        if self.meta_aggregation:
            self._defer_header(name)
        elif self.comm.rank == 0 or not self.parallel:
            self.adio.write_contig(header_offset, header.pack())
        self._headers[name] = (header, header_offset)
        self._order.append(name)
        self._alloc = data_offset + nbytes
        if self.parallel:
            coll.barrier(self.comm)
        return H5Dataset(self, header, header_offset)

    def open_dataset(self, name: str) -> H5Dataset:
        try:
            header, offset = self._headers[name]
        except KeyError:
            raise KeyError(f"no dataset named {name!r}") from None
        return H5Dataset(self, header, offset)

    def datasets(self) -> list[str]:
        return list(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._headers

    # -- internals -------------------------------------------------------------------

    def _defer_header(self, name: str) -> None:
        """Queue ``name``'s object header for the aggregated close flush."""
        if name not in self._deferred:
            self._deferred.append(name)

    def _flush_deferred_headers(self) -> None:
        """Write every deferred object header as one list-I/O request.

        Runs on rank 0 at close: the headers get offsets in one contiguous
        metadata block allocated after the last data region, replacing the
        per-dataset small interleaved writes the paper measured with a
        single batched sequential request.
        """
        if not self._deferred:
            return
        segments = []
        blobs = []
        for name in self._deferred:
            header, _ = self._headers[name]
            offset = self._alloc
            self._alloc += HEADER_CAPACITY
            self._headers[name] = (header, offset)
            raw = header.pack()
            segments.append((offset, len(raw)))
            blobs.append(raw)
        self.adio.write_list(segments, b"".join(blobs))
        self._deferred.clear()

    def _load(self) -> None:
        raw = self.adio.read_contig(0, SUPERBLOCK_SIZE)
        _, root_offset, count = unpack_superblock(raw)
        size = self.adio.size()
        table = unpack_root_table(
            self.adio.read_contig(root_offset, size - root_offset), count
        )
        for name, offset in table:
            header = ObjectHeader.unpack(self.adio.read_contig(offset, HEADER_CAPACITY))
            self._headers[name] = (header, offset)
            self._order.append(name)
        self._alloc = root_offset

    def _check_writable(self) -> None:
        if not self._open:
            raise ValueError("file is closed")
        if self.mode != "w":
            raise ValueError("file not opened for writing")
