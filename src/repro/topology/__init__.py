"""Machine models: interconnects, SMP nodes, platform presets."""

from .machine import Machine
from .network import CCNumaNetwork, Network, SwitchedNetwork
from .presets import PRESETS, chiba_city, chiba_city_local, ibm_sp2, origin2000

__all__ = [
    "Machine",
    "Network",
    "SwitchedNetwork",
    "CCNumaNetwork",
    "origin2000",
    "ibm_sp2",
    "chiba_city",
    "chiba_city_local",
    "PRESETS",
]
