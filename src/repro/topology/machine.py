"""Machine descriptions: compute nodes, rank placement, CPU speed.

A :class:`Machine` binds together an interconnect, a rank-to-node placement
(SMP nodes hold several ranks), a crude CPU-speed model used by the AMR
solver to charge compute time, and -- attached after construction -- a file
system from :mod:`repro.pfs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pfs.base import FileSystem

__all__ = ["Machine"]


@dataclass
class Machine:
    """A parallel platform as seen by the simulated software stack.

    Parameters
    ----------
    name:
        Human-readable platform name (shows up in benchmark output).
    nprocs:
        Number of processors (MPI ranks) available.
    procs_per_node:
        SMP width; ranks ``[k*ppn, (k+1)*ppn)`` share node ``k`` and hence
        its NIC and its per-node I/O request queue.
    network:
        Interconnect between nodes (NIC contention, latency).
    cpu_flops:
        Per-processor floating-point rate used to charge solver compute time.
    memcpy_bandwidth:
        In-memory copy speed; used for local packing/unpacking costs.
    """

    name: str
    nprocs: int
    procs_per_node: int
    network: Network
    cpu_flops: float = 500e6
    memcpy_bandwidth: float = 400e6
    fs: Optional["FileSystem"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("machine needs at least one processor")
        if self.procs_per_node < 1:
            raise ValueError("procs_per_node must be >= 1")
        needed = (self.nprocs + self.procs_per_node - 1) // self.procs_per_node
        if self.network.nnodes < needed:
            raise ValueError(
                f"network has {self.network.nnodes} nodes but "
                f"{self.nprocs} ranks at {self.procs_per_node}/node need {needed}"
            )

    # -- placement ---------------------------------------------------------

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        return rank // self.procs_per_node

    @property
    def nnodes(self) -> int:
        """Number of compute nodes actually occupied by ranks."""
        return (self.nprocs + self.procs_per_node - 1) // self.procs_per_node

    def ranks_on_node(self, node: int) -> range:
        """Ranks placed on ``node``."""
        lo = node * self.procs_per_node
        hi = min(lo + self.procs_per_node, self.nprocs)
        if lo >= self.nprocs:
            raise ValueError(f"node {node} hosts no ranks")
        return range(lo, hi)

    # -- cost helpers --------------------------------------------------------

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        return flops / self.cpu_flops

    def memcpy_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` within a node's memory."""
        return nbytes / self.memcpy_bandwidth

    def reset_timing(self) -> None:
        """Zero network and file-system timelines between timed phases."""
        self.network.reset_timing()
        if self.fs is not None:
            self.fs.reset_timing()

    def attach_fs(self, fs: "FileSystem") -> "Machine":
        """Attach a file system; returns self for chaining."""
        self.fs = fs
        return self
