"""Interconnect models.

A network moves a message of ``nbytes`` from node ``src`` to node ``dst`` and
reports the virtual time at which the last byte arrives.  All concrete models
share one structure: each node owns an *egress* and an *ingress* FCFS link of
finite bandwidth, and a message must occupy first the sender's egress link and
then the receiver's ingress link, plus a per-message wire latency.  Hot spots
(many-to-one gathers, single-writer I/O funnels) therefore serialise on the
receiver's ingress link, which is the first-order contention effect in the
paper's experiments.

Concrete classes only differ in their parameters and in intra-node handling:

* :class:`SwitchedNetwork` -- a generic full-bisection switch (SP switch,
  Myrinet, fast Ethernet through a switch); every node pair communicates at
  NIC speed.
* :class:`CCNumaNetwork` -- the Origin2000 bristled-fat-hypercube: messages
  are memory-to-memory copies at very high bandwidth and sub-microsecond
  latency; "local" transfers (same node) run at memory-copy speed.
"""

from __future__ import annotations

from ..sim.resources import Timeline

__all__ = ["Network", "SwitchedNetwork", "CCNumaNetwork"]


class Network:
    """Base interconnect: per-node ingress/egress links plus wire latency."""

    def __init__(
        self,
        nnodes: int,
        latency: float,
        bandwidth: float,
        *,
        local_bandwidth: float | None = None,
        fabric_bandwidth: float = float("inf"),
        name: str = "network",
    ):
        """``bandwidth`` is per-NIC in bytes/s; ``latency`` in seconds.

        ``local_bandwidth`` is used for same-node transfers (defaults to
        4x the NIC bandwidth, a crude memory-copy model).
        ``fabric_bandwidth`` caps the *aggregate* inter-node traffic: all
        messages additionally occupy one shared switch-fabric timeline.
        Full-bisection interconnects leave it infinite; an oversubscribed
        commodity Ethernet switch makes it a few NICs' worth, which is the
        contention the paper blames on Chiba City's fast Ethernet.
        """
        if nnodes < 1:
            raise ValueError("network needs at least one node")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.nnodes = nnodes
        self.latency = latency
        self.bandwidth = bandwidth
        self.local_bandwidth = local_bandwidth or 4.0 * bandwidth
        self.fabric_bandwidth = fabric_bandwidth
        self.fabric = Timeline(name=f"{name}.fabric")
        self.egress = [Timeline(name=f"{name}.egress[{i}]") for i in range(nnodes)]
        self.ingress = [Timeline(name=f"{name}.ingress[{i}]") for i in range(nnodes)]
        self.bytes_moved = 0
        self.messages = 0

    def _check(self, node: int) -> None:
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} out of range [0, {self.nnodes})")

    def reset_timing(self) -> None:
        """Zero all link timelines (between independent timed phases)."""
        self.fabric.reset()
        for t in self.egress:
            t.reset()
        for t in self.ingress:
            t.reset()

    def transfer(self, ready_time: float, src: int, dst: int, nbytes: int) -> float:
        """Send ``nbytes`` from ``src`` to ``dst``; return the arrival time."""
        self._check(src)
        self._check(dst)
        if nbytes < 0:
            raise ValueError("negative message size")
        self.bytes_moved += nbytes
        self.messages += 1
        if src == dst:
            # Intra-node: a memory copy, no NIC involvement.
            return ready_time + nbytes / self.local_bandwidth
        occupancy = nbytes / self.bandwidth
        out_start, out_end = self.egress[src].serve(ready_time, occupancy)
        if self.fabric_bandwidth != float("inf"):
            _, out_end2 = self.fabric.serve(out_start, nbytes / self.fabric_bandwidth)
            out_end = max(out_end, out_end2)
        # Cut-through: bytes start arriving one wire latency after they start
        # leaving, so the ingress link is occupied from then on; the message
        # has fully arrived when both pipelines have drained.
        _, in_end = self.ingress[dst].serve(out_start + self.latency, occupancy)
        return max(in_end, out_end + self.latency)

    def transfer_time(self, nbytes: int, *, local: bool = False) -> float:
        """Uncontended point-to-point time for ``nbytes``."""
        if local:
            return nbytes / self.local_bandwidth
        return self.latency + nbytes / self.bandwidth


class SwitchedNetwork(Network):
    """Full-bisection switch: IBM SP switch, Myrinet, switched Ethernet."""

    def __init__(self, nnodes: int, latency: float, bandwidth: float, **kw):
        kw.setdefault("name", "switch")
        super().__init__(nnodes, latency, bandwidth, **kw)


class CCNumaNetwork(Network):
    """SGI Origin2000 ccNUMA interconnect.

    The bristled fat hypercube has very high bisection bandwidth and remote
    memory latencies under a microsecond, so message passing between ranks is
    close to the cost of a memory copy.  This is why the paper's two-phase
    communication overhead is "relatively low" on this platform.
    """

    def __init__(
        self,
        nnodes: int,
        latency: float = 1.0e-6,
        bandwidth: float = 600e6,
        **kw,
    ):
        kw.setdefault("local_bandwidth", 2.0 * bandwidth)
        kw.setdefault("name", "ccnuma")
        super().__init__(nnodes, latency, bandwidth, **kw)
