"""Machine presets for the paper's experimental platforms (Section 4).

Parameters are period-plausible hardware numbers (2001/2002 era) chosen so
the *mechanisms* the paper identifies are present; EXPERIMENTS.md records
them next to each figure.  Nothing here is fitted to individual data points
-- each platform is a handful of physical constants.

* :func:`origin2000` -- NCSA SGI Origin2000: 48 R10k processors, ccNUMA
  (sub-microsecond latency, high bisection), XFS on a striped scratch
  volume.  Parallel I/O helps because many processes engage many disks,
  while one process is limited by its own I/O path.
* :func:`ibm_sp2` -- SDSC IBM SP (Power3 SMP high nodes): 8-way SMP nodes
  on the SP switch; GPFS with large fixed stripes, distributed write
  tokens, and a per-node I/O request queue (the paper's SMP contention).
* :func:`chiba_city` -- ANL Chiba City Linux cluster: 2x500 MHz PIII
  nodes, **fast Ethernet** through an oversubscribed switch, PVFS with 8
  I/O nodes.
* :func:`chiba_city_local` -- same nodes, but each process does I/O to its
  node-local disk through the PVFS interface (the paper's 4th experiment).
* :func:`lustre` -- a post-paper what-if: Linux cluster on gigabit
  Ethernet with a Lustre-like volume (16 OSTs, single MDS, per-file
  stripe layouts tunable through the MPI-IO striping hints).
"""

from __future__ import annotations

from .machine import Machine
from .network import CCNumaNetwork, Network, SwitchedNetwork

# NOTE: repro.pfs is imported inside each factory, not at module level:
# pfs.striped itself imports repro.topology for the network models, so a
# module-level import here would close an import cycle whose outcome
# depends on which package happens to load first.

__all__ = [
    "origin2000",
    "ibm_sp2",
    "chiba_city",
    "chiba_city_local",
    "lustre",
    "PRESETS",
]

KB = 1024
MB = 1024 * 1024


def origin2000(nprocs: int = 32) -> Machine:
    """SGI Origin2000 with XFS (Figures 6 and 10)."""
    from ..pfs.striped import StripedServerFS

    net = CCNumaNetwork(nnodes=nprocs, latency=1e-6, bandwidth=600 * MB)
    machine = Machine(
        name="SGI-Origin2000/XFS",
        nprocs=nprocs,
        procs_per_node=1,
        network=net,
        cpu_flops=500e6,
        memcpy_bandwidth=300 * MB,
    )
    fs = StripedServerFS(
        "xfs",
        nservers=16,  # striped scratch volume (1290 GB of 2002-era disks)
        stripe_size=1 * MB,
        disk_bandwidth=25 * MB,
        seek_time=2e-3,  # RAID controller cache + elevator absorb most seeks
        request_cpu_time=0.2e-3,
        server_net_bandwidth=200 * MB,  # XBOW/FC back-end
        net_latency=30e-6,
        metadata_time=0.5e-3,
        cache_bytes_per_server=8 * MB,
        client_network=net,
        client_channel_bandwidth=80 * MB,  # single-process I/O path
    )
    return machine.attach_fs(fs)


def ibm_sp2(nprocs: int = 64, procs_per_node: int = 8) -> Machine:
    """IBM SP with GPFS (Figure 7)."""
    from ..pfs.striped import StripedServerFS

    nnodes = (nprocs + procs_per_node - 1) // procs_per_node
    net = SwitchedNetwork(
        nnodes=nnodes, latency=20e-6, bandwidth=130 * MB, name="sp-switch"
    )
    machine = Machine(
        name="IBM-SP/GPFS",
        nprocs=nprocs,
        procs_per_node=procs_per_node,
        network=net,
        cpu_flops=1500e6,  # 375 MHz Power3, 4 flops/cycle peak
        memcpy_bandwidth=400 * MB,
    )
    fs = StripedServerFS(
        "gpfs",
        nservers=12,  # VSD servers
        stripe_size=256 * KB,  # GPFS's "very large, fixed striping size"
        disk_bandwidth=30 * MB,
        seek_time=8e-3,
        request_cpu_time=0.5e-3,
        server_net_bandwidth=130 * MB,
        net_latency=40e-6,
        metadata_time=1e-3,
        cache_bytes_per_server=32 * MB,
        client_network=net,
        client_channel_bandwidth=60 * MB,
        write_token_time=10e-3,  # token revocation round-trip + flush
        token_granularity="file",  # coarse initial whole-range grants
        tokens_on_read=True,  # reading another node's dirty data flushes it
        stripe_aligned_io=True,  # small reads cost a whole GPFS block
        smp_io_queue_time=1.5e-3,  # per-request VSD client service, per node
    )
    return machine.attach_fs(fs)


def chiba_city(nprocs: int = 8) -> Machine:
    """ANL Chiba City: PVFS over fast Ethernet (Figure 8).

    8 compute nodes (one process each, as in the paper's runs) and 8 PVFS
    I/O nodes, all on 100 Mb/s Ethernet behind an oversubscribed switch.
    """
    from ..pfs.striped import StripedServerFS

    net = SwitchedNetwork(
        nnodes=nprocs,
        latency=120e-6,
        bandwidth=11.5 * MB,  # 100 Mb/s minus TCP/IP overhead
        fabric_bandwidth=20 * MB,  # oversubscribed backplane
        name="fast-ethernet",
    )
    machine = Machine(
        name="ChibaCity/PVFS",
        nprocs=nprocs,
        procs_per_node=1,
        network=net,
        cpu_flops=500e6,
        memcpy_bandwidth=250 * MB,
    )
    fs = StripedServerFS(
        "pvfs",
        nservers=8,
        stripe_size=64 * KB,
        disk_bandwidth=20 * MB,
        seek_time=10e-3,
        request_cpu_time=1.5e-3,  # user-space iod per-request processing
        server_net_bandwidth=11.5 * MB,  # I/O nodes on the same Ethernet
        net_latency=120e-6,
        metadata_time=2e-3,
        cache_bytes_per_server=16 * MB,  # Linux buffer cache on I/O nodes
        client_network=net,
    )
    return machine.attach_fs(fs)


def chiba_city_local(nprocs: int = 8) -> Machine:
    """Chiba City with node-local disks via the PVFS interface (Figure 9)."""
    from ..pfs.localfs import LocalDiskFS

    net = SwitchedNetwork(
        nnodes=nprocs,
        latency=120e-6,
        bandwidth=11.5 * MB,
        fabric_bandwidth=30 * MB,
        name="fast-ethernet",
    )
    machine = Machine(
        name="ChibaCity/local-disk",
        nprocs=nprocs,
        procs_per_node=1,
        network=net,
        cpu_flops=500e6,
        memcpy_bandwidth=250 * MB,
    )
    fs = LocalDiskFS(
        "pvfs-local",
        nnodes=nprocs,
        disk_bandwidth=20 * MB,
        seek_time=10e-3,
        request_cpu_time=0.3e-3,
        metadata_time=0.5e-3,
        cache_bytes_per_node=16 * MB,
        scatter_mode=True,
    )
    return machine.attach_fs(fs)


def lustre(nprocs: int = 8) -> Machine:
    """Linux cluster with a Lustre-like volume (post-paper what-if).

    16 OSTs behind gigabit Ethernet, a single MDS, and a conservative
    volume default of 4-wide 1 MiB stripes -- the layout a site ships
    before anybody runs ``lfs setstripe``.  Checkpoint files that widen
    their stripe count to all 16 OSTs (the ``striping_factor`` hint)
    engage 4x the spindles, which is the retune the AutoTuner proposes.
    """
    from ..pfs.lustre import LustreFS

    net = SwitchedNetwork(
        nnodes=nprocs,
        latency=60e-6,
        bandwidth=110 * MB,  # gigabit Ethernet minus TCP/IP overhead
        fabric_bandwidth=800 * MB,
        name="gig-ethernet",
    )
    machine = Machine(
        name="LinuxCluster/Lustre",
        nprocs=nprocs,
        procs_per_node=1,
        network=net,
        cpu_flops=2000e6,
        memcpy_bandwidth=800 * MB,
    )
    fs = LustreFS(
        "lustre",
        nosts=16,
        stripe_size=1 * MB,
        stripe_count=4,  # conservative volume default; tuning widens to 16
        disk_bandwidth=35 * MB,
        seek_time=8e-3,
        request_cpu_time=0.3e-3,
        server_net_bandwidth=110 * MB,
        net_latency=60e-6,
        ost_queue_time=0.8e-3,  # per-request OST service serialisation
        mds_open_time=2.5e-3,  # single MDS serves opens serially
        mds_per_file_time=0.4e-3,  # namespace scan cost per tracked file
        cache_bytes_per_ost=32 * MB,
        client_network=net,
        client_channel_bandwidth=90 * MB,
    )
    return machine.attach_fs(fs)


PRESETS = {
    "origin2000": origin2000,
    "ibm_sp2": ibm_sp2,
    "chiba_city": chiba_city,
    "chiba_city_local": chiba_city_local,
    "lustre": lustre,
}
