"""The insights smoke matrix (``repro bench insights``).

A small executor-driven cell set that traces one checkpoint dump per
strategy and runs the Drishti-style detector rules over it -- the "does
the diagnosis engine still see what it should" smoke that verify.sh used
to get only from the pytest suite.  Each cell's record is deterministic
(rule ids fired with severities, event count, golden trace digest), so
the cells cache and parallelise exactly like the regress/scale cells.

The gate is structural, not baselined: a cell that raises fails the run,
and :func:`check_smoke` asserts the one qualitative invariant the paper's
whole optimisation story rests on -- the serial HDF4 strategy must
diagnose strictly worse (more HIGH findings) than tuned MPI-IO.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..topology.presets import PRESETS
from .cellrunner import CellFamily, register_family
from .runners import run_traced_experiment
from .workloads import build_workload

__all__ = [
    "INSIGHTS_MATRIX",
    "InsightsCell",
    "check_smoke",
    "run_insights_cell",
    "run_insights_matrix",
]


@dataclass(frozen=True)
class InsightsCell:
    """One smoke cell: dump with ``strategy``, diagnose the trace."""

    strategy: str
    machine: str = "origin2000"
    problem: str = "AMR16"
    nprocs: int = 4

    @property
    def id(self) -> str:
        return f"insights:{self.strategy}:{self.nprocs}"


INSIGHTS_MATRIX: tuple[InsightsCell, ...] = tuple(
    InsightsCell(strategy)
    for strategy in ("hdf4", "mpi-io", "hdf5", "hdf5-aligned")
)


def run_insights_cell(cell: InsightsCell) -> dict:
    """Trace one dump, diagnose it, reduce to a canonical record."""
    from ..insights import Severity, diagnose
    from ..iostack import registry

    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    strategy = registry.create(cell.strategy)
    _result, trace = run_traced_experiment(
        machine,
        strategy,
        build_workload(cell.problem),
        nprocs=cell.nprocs,
        do_read=False,
    )
    diagnosis = diagnose(trace, nprocs=cell.nprocs, strategy=cell.strategy)
    findings = sorted(
        {
            (i.rule, i.severity.name)
            for i in diagnosis.insights
            if i.severity is not Severity.OK
        }
    )
    return {
        "strategy": cell.strategy,
        "machine": cell.machine,
        "problem": cell.problem,
        "nprocs": cell.nprocs,
        "findings": [{"rule": rule, "severity": sev} for rule, sev in findings],
        "high": diagnosis.count(Severity.HIGH),
        "warn": diagnosis.count(Severity.WARN),
        "trace_events": len(trace),
        "trace_digest": trace.digest(),
    }


def run_insights_matrix(
    cells: list[InsightsCell] | None = None,
    *,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
) -> dict[str, dict]:
    from .executor import run_cells

    cells = list(INSIGHTS_MATRIX) if cells is None else cells
    return run_cells("insights", cells, jobs=jobs, cache=cache,
                     telemetry=telemetry, progress=progress)


def check_smoke(records: dict[str, dict]) -> list[str]:
    """Structural invariants over a finished smoke run; returns problems."""
    problems = []
    by_strategy = {r["strategy"]: r for r in records.values()}
    hdf4, mpiio = by_strategy.get("hdf4"), by_strategy.get("mpi-io")
    if hdf4 and mpiio and hdf4["high"] <= mpiio["high"]:
        problems.append(
            "the serial hdf4 dump should diagnose worse than mpi-io "
            f"(HIGH findings: hdf4 {hdf4['high']} <= mpi-io {mpiio['high']})"
        )
    for rec in records.values():
        if not rec["findings"]:
            problems.append(
                f"{rec['strategy']}: no detector rule fired at all "
                "(the diagnosis engine is blind)"
            )
    return problems


def _family_run(cell: InsightsCell, extra: dict) -> dict:
    return run_insights_cell(cell)


register_family(CellFamily(
    name="insights",
    run=_family_run,
    cell_id=lambda c: c.id,
    spec=lambda c, extra: asdict(c),
    describe=lambda c: f"{c.id} ({c.machine}, {c.problem})",
))
