"""Benchmark workloads: the ENZO problem sizes as ready-made hierarchies.

``AMR64``/``AMR128``/``AMR256`` are the paper's sizes; the scaled-down
``AMR16``/``AMR32`` exist so the full benchmark matrix also runs quickly on
a laptop.  Hierarchies are deterministic per (problem, seed) and cached.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..amr.grid import Grid
from ..amr.hierarchy import GridHierarchy
from ..amr.initial_conditions import make_initial_conditions
from ..amr.particles import ParticleSet
from ..amr.partition import BlockPartition, processor_grid
from ..enzo.simulation import PROBLEM_SIZES

__all__ = ["build_workload", "build_scale_workload", "workload_summary"]


@lru_cache(maxsize=8)
def build_workload(
    problem: str = "AMR64",
    *,
    seed: int = 0,
    pre_refine: int = 1,
    particles_per_cell: float = 0.25,
    refine_threshold: float = 2.2,
) -> GridHierarchy:
    """The checkpoint-dump hierarchy for one problem size (cached).

    An evolved-looking hierarchy: a few dozen moderately-sized subgrids
    clustered around the overdensities, which is what a per-cycle data
    dump writes.
    """
    dims = PROBLEM_SIZES[problem]
    return make_initial_conditions(
        dims,
        particles_per_cell=particles_per_cell,
        seed=seed,
        pre_refine=pre_refine,
        refine_threshold=refine_threshold,
    )


@lru_cache(maxsize=8)
def build_initial_workload(
    problem: str = "AMR64",
    *,
    seed: int = 0,
    particles_per_cell: float = 0.25,
) -> GridHierarchy:
    """The new-simulation *initial grids*: root + a few pre-refined subgrids.

    The paper's read experiments read these ("the top-grid and some
    pre-refined subgrids"), each partitioned among all processors.  The
    clustering parameters produce a handful of large patches rather than
    the many small grids of an evolved hierarchy.
    """
    dims = PROBLEM_SIZES[problem]
    return make_initial_conditions(
        dims,
        particles_per_cell=particles_per_cell,
        seed=seed,
        pre_refine=1,
        refine_threshold=2.6,
        refine_kwargs={
            "min_efficiency": 0.05,
            "max_box_cells": 32768,
        },
    )


@lru_cache(maxsize=16)
def build_scale_workload(
    nprocs: int,
    *,
    cells_per_rank_axis: int = 8,
    subgrid_cells: int = 8,
    particles_per_rank: int = 8,
) -> GridHierarchy:
    """A weak-scaling checkpoint hierarchy: per-rank work is constant in P.

    The root grid spans ``processor_grid(P) * cells_per_rank_axis`` cells,
    so every rank's (Block, Block, Block) piece is exactly
    ``cells_per_rank_axis^3`` cells at any P, and each rank owns one
    level-1 subgrid of ``subgrid_cells^3`` cells refined inside its own
    block.  All data is deterministic (index-derived fills, regularly
    spaced particles) and cheap to build -- no random refinement pass --
    which is what makes P=1024 hierarchies constructible in well under a
    second.
    """
    pgrid = processor_grid(nprocs)
    dims = tuple(p * cells_per_rank_axis for p in pgrid)
    root = Grid.make_root(dims)
    ncells = root.ncells
    ramp = (np.arange(ncells, dtype=np.float64) % 997.0).reshape(dims)
    for i, name in enumerate(root.fields.names):
        root.fields[name] = ramp + float(i)
    # A few root particles per rank, regularly spread over the whole
    # domain so the irregular (position-based) partition stays exercised.
    nroot_p = 4 * nprocs
    frac = (np.arange(nroot_p, dtype=np.float64) + 0.5) / nroot_p
    positions = np.column_stack([
        frac,
        (frac * 7.0) % 1.0,
        (frac * 13.0) % 1.0,
    ])
    root.particles = ParticleSet(
        ids=np.arange(nroot_p, dtype=np.int64),
        positions=positions,
        velocities=positions * 0.5 - 0.25,
        mass=np.full(nroot_p, 1.0 / nroot_p),
        attributes=np.column_stack([frac, 1.0 - frac]),
    )
    hierarchy = GridHierarchy(root)
    part = BlockPartition(dims, nprocs)
    cw = root.cell_width
    refined_root_cells = subgrid_cells // 2  # level-1 refinement factor 2
    base_id = nroot_p
    for rank in range(nprocs):
        starts, sizes = part.block_of(rank)
        span = [min(refined_root_cells, s) for s in sizes]
        left = root.left_edge + np.array(starts) * cw
        right = left + np.array(span) * cw
        sub = Grid(
            id=rank + 1,
            level=1,
            dims=tuple(2 * s for s in span),
            left_edge=left,
            right_edge=right,
            parent_id=root.id,
        )
        sramp = (
            np.arange(sub.ncells, dtype=np.float64) % 251.0
        ).reshape(sub.dims)
        for i, name in enumerate(sub.fields.names):
            sub.fields[name] = sramp * 0.5 + float(rank + i)
        npart = particles_per_rank
        sfrac = (np.arange(npart, dtype=np.float64) + 0.5) / npart
        spos = left + (right - left) * np.column_stack([sfrac, sfrac, sfrac])
        sub.particles = ParticleSet(
            ids=base_id + rank * npart + np.arange(npart, dtype=np.int64),
            positions=spos,
            velocities=spos * 0.25,
            mass=np.full(npart, float(rank + 1)),
            attributes=np.column_stack([sfrac, sfrac * 2.0]),
        )
        hierarchy.add_grid(sub)
    return hierarchy


def workload_summary(hierarchy: GridHierarchy) -> dict:
    return {
        "grids": len(hierarchy),
        "max_level": hierarchy.max_level,
        "cells": hierarchy.total_cells(),
        "particles": hierarchy.total_particles(),
        "data_mb": hierarchy.total_data_nbytes() / 2**20,
    }
