"""Benchmark workloads: named scenarios as ready-made hierarchies.

Every workload resolves through the :mod:`repro.scenarios` registry: the
paper's ``AMR64``/``AMR128``/``AMR256`` sizes (plus the laptop-scale
``AMR16``/``AMR32``) are built-in scenarios, and the gated parameter-file
scenarios (``foggie-nested``, ``nyx-plotfile``, ``flashx-particles``)
come through the same funnel.  Builders accept either a scenario name or
a :class:`~repro.scenarios.Scenario` object (e.g. one loaded from a
``--param-file``).

Hierarchies are deterministic per scenario and cached -- but the cache
holds *masters* and every call returns a deep copy, so callers that
mutate their hierarchy in place (``EnzoSimulation`` evolves it on rank 0)
can never poison the next run's workload.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np

from ..amr.grid import Grid
from ..amr.hierarchy import GridHierarchy
from ..amr.particles import ParticleSet
from ..amr.partition import BlockPartition, processor_grid
from ..scenarios import Scenario, build_hierarchy
from ..scenarios import registry as scenario_registry

__all__ = [
    "build_initial_workload",
    "build_scale_workload",
    "build_workload",
    "resolve_scenario",
    "workload_summary",
]


def resolve_scenario(problem: str | Scenario) -> Scenario:
    """A :class:`Scenario` from a registry name or a scenario object.

    Unknown names raise :class:`~repro.scenarios.ScenarioError` with the
    registry's "choose from ..." message.
    """
    if isinstance(problem, Scenario):
        return problem
    return scenario_registry.get(str(problem))


@lru_cache(maxsize=16)
def _cached_hierarchy(scenario: Scenario, initial: bool) -> GridHierarchy:
    return build_hierarchy(scenario, initial=initial)


def _overrides(**kwargs) -> dict:
    return {k: v for k, v in kwargs.items() if v is not None}


def build_workload(
    problem: str | Scenario = "AMR64",
    *,
    seed: int | None = None,
    pre_refine: int | None = None,
    particles_per_cell: float | None = None,
    refine_threshold: float | None = None,
) -> GridHierarchy:
    """The checkpoint-dump hierarchy for one scenario (cached master, copy out).

    An evolved-looking hierarchy: a few dozen moderately-sized subgrids
    clustered around the overdensities, which is what a per-cycle data
    dump writes.  Keyword overrides replace the scenario's own values;
    left at ``None`` they defer to the scenario (so a parameter-file
    scenario keeps its parsed settings).
    """
    scenario = resolve_scenario(problem)
    overrides = _overrides(
        seed=seed,
        pre_refine=pre_refine,
        particles_per_cell=particles_per_cell,
        refine_threshold=refine_threshold,
    )
    if overrides:
        scenario = replace(scenario, **overrides)
    return _cached_hierarchy(scenario, False).copy()


def build_initial_workload(
    problem: str | Scenario = "AMR64",
    *,
    seed: int | None = None,
    particles_per_cell: float | None = None,
) -> GridHierarchy:
    """The new-simulation *initial grids*: root + a few pre-refined subgrids.

    The paper's read experiments read these ("the top-grid and some
    pre-refined subgrids"), each partitioned among all processors.  The
    clustering parameters produce a handful of large patches rather than
    the many small grids of an evolved hierarchy.
    """
    scenario = resolve_scenario(problem)
    overrides = _overrides(seed=seed, particles_per_cell=particles_per_cell)
    if overrides:
        scenario = replace(scenario, **overrides)
    return _cached_hierarchy(scenario, True).copy()


@lru_cache(maxsize=16)
def _cached_scale_hierarchy(
    nprocs: int,
    cells_per_rank_axis: int,
    subgrid_cells: int,
    particles_per_rank: int,
) -> GridHierarchy:
    pgrid = processor_grid(nprocs)
    dims = tuple(p * cells_per_rank_axis for p in pgrid)
    root = Grid.make_root(dims)
    ncells = root.ncells
    ramp = (np.arange(ncells, dtype=np.float64) % 997.0).reshape(dims)
    for i, name in enumerate(root.fields.names):
        root.fields[name] = ramp + float(i)
    # A few root particles per rank, regularly spread over the whole
    # domain so the irregular (position-based) partition stays exercised.
    nroot_p = 4 * nprocs
    frac = (np.arange(nroot_p, dtype=np.float64) + 0.5) / nroot_p
    positions = np.column_stack([
        frac,
        (frac * 7.0) % 1.0,
        (frac * 13.0) % 1.0,
    ])
    root.particles = ParticleSet(
        ids=np.arange(nroot_p, dtype=np.int64),
        positions=positions,
        velocities=positions * 0.5 - 0.25,
        mass=np.full(nroot_p, 1.0 / nroot_p),
        attributes=np.column_stack([frac, 1.0 - frac]),
    )
    hierarchy = GridHierarchy(root)
    part = BlockPartition(dims, nprocs)
    cw = root.cell_width
    refined_root_cells = subgrid_cells // 2  # level-1 refinement factor 2
    base_id = nroot_p
    for rank in range(nprocs):
        starts, sizes = part.block_of(rank)
        span = [min(refined_root_cells, s) for s in sizes]
        left = root.left_edge + np.array(starts) * cw
        right = left + np.array(span) * cw
        sub = Grid(
            id=rank + 1,
            level=1,
            dims=tuple(2 * s for s in span),
            left_edge=left,
            right_edge=right,
            parent_id=root.id,
        )
        sramp = (
            np.arange(sub.ncells, dtype=np.float64) % 251.0
        ).reshape(sub.dims)
        for i, name in enumerate(sub.fields.names):
            sub.fields[name] = sramp * 0.5 + float(rank + i)
        npart = particles_per_rank
        sfrac = (np.arange(npart, dtype=np.float64) + 0.5) / npart
        spos = left + (right - left) * np.column_stack([sfrac, sfrac, sfrac])
        sub.particles = ParticleSet(
            ids=base_id + rank * npart + np.arange(npart, dtype=np.int64),
            positions=spos,
            velocities=spos * 0.25,
            mass=np.full(npart, float(rank + 1)),
            attributes=np.column_stack([sfrac, sfrac * 2.0]),
        )
        hierarchy.add_grid(sub)
    return hierarchy


def build_scale_workload(
    nprocs: int,
    *,
    cells_per_rank_axis: int = 8,
    subgrid_cells: int = 8,
    particles_per_rank: int = 8,
) -> GridHierarchy:
    """A weak-scaling checkpoint hierarchy: per-rank work is constant in P.

    The root grid spans ``processor_grid(P) * cells_per_rank_axis`` cells,
    so every rank's (Block, Block, Block) piece is exactly
    ``cells_per_rank_axis^3`` cells at any P, and each rank owns one
    level-1 subgrid of ``subgrid_cells^3`` cells refined inside its own
    block.  All data is deterministic (index-derived fills, regularly
    spaced particles) and cheap to build -- no random refinement pass --
    which is what makes P=1024 hierarchies constructible in well under a
    second.  Like the scenario builders, returns a copy of the cached
    master.
    """
    return _cached_scale_hierarchy(
        nprocs, cells_per_rank_axis, subgrid_cells, particles_per_rank
    ).copy()


def workload_summary(hierarchy: GridHierarchy) -> dict:
    return {
        "grids": len(hierarchy),
        "max_level": hierarchy.max_level,
        "cells": hierarchy.total_cells(),
        "particles": hierarchy.total_particles(),
        "data_mb": hierarchy.total_data_nbytes() / 2**20,
    }
