"""Benchmark workloads: the ENZO problem sizes as ready-made hierarchies.

``AMR64``/``AMR128``/``AMR256`` are the paper's sizes; the scaled-down
``AMR16``/``AMR32`` exist so the full benchmark matrix also runs quickly on
a laptop.  Hierarchies are deterministic per (problem, seed) and cached.
"""

from __future__ import annotations

from functools import lru_cache

from ..amr.hierarchy import GridHierarchy
from ..amr.initial_conditions import make_initial_conditions
from ..enzo.simulation import PROBLEM_SIZES

__all__ = ["build_workload", "workload_summary"]


@lru_cache(maxsize=8)
def build_workload(
    problem: str = "AMR64",
    *,
    seed: int = 0,
    pre_refine: int = 1,
    particles_per_cell: float = 0.25,
    refine_threshold: float = 2.2,
) -> GridHierarchy:
    """The checkpoint-dump hierarchy for one problem size (cached).

    An evolved-looking hierarchy: a few dozen moderately-sized subgrids
    clustered around the overdensities, which is what a per-cycle data
    dump writes.
    """
    dims = PROBLEM_SIZES[problem]
    return make_initial_conditions(
        dims,
        particles_per_cell=particles_per_cell,
        seed=seed,
        pre_refine=pre_refine,
        refine_threshold=refine_threshold,
    )


@lru_cache(maxsize=8)
def build_initial_workload(
    problem: str = "AMR64",
    *,
    seed: int = 0,
    particles_per_cell: float = 0.25,
) -> GridHierarchy:
    """The new-simulation *initial grids*: root + a few pre-refined subgrids.

    The paper's read experiments read these ("the top-grid and some
    pre-refined subgrids"), each partitioned among all processors.  The
    clustering parameters produce a handful of large patches rather than
    the many small grids of an evolved hierarchy.
    """
    dims = PROBLEM_SIZES[problem]
    return make_initial_conditions(
        dims,
        particles_per_cell=particles_per_cell,
        seed=seed,
        pre_refine=1,
        refine_threshold=2.6,
        refine_kwargs={
            "min_efficiency": 0.05,
            "max_box_cells": 32768,
        },
    )


def workload_summary(hierarchy: GridHierarchy) -> dict:
    return {
        "grids": len(hierarchy),
        "max_level": hierarchy.max_level,
        "cells": hierarchy.total_cells(),
        "particles": hierarchy.total_particles(),
        "data_mb": hierarchy.total_data_nbytes() / 2**20,
    }
