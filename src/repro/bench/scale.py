"""Weak-scaling sweeps past the paper's processor counts (``repro scale``).

The paper measures P <= 64; this module pushes the same strategy stack to
P in {16, 64, 128, 512, 1024} on synthetic weak-scaling workloads (per-rank
data constant, see :func:`~repro.bench.workloads.build_scale_workload`) and
pins the *scaling trends* -- shared-file collective I/O degrades gracefully
while file-per-grid metadata cost explodes with P -- as a committed
``BENCH_scale.json`` gate.

Feasibility rests on the scale-mode fast paths, none of which are enabled
on the pinned-digest figure cells:

* ``batch_collectives=True`` -- collectives run through the rendezvous
  engine (:mod:`repro.mpi.batch`): O(P) schedule crossings per collective
  instead of O(P log P .. P^2) simulated messages;
* ``strategy.batch_requests = True`` -- a grid file's array writes are
  posted as one batched request (one schedule-point crossing);
* hoisted state construction -- ``HierarchyMeta``, the block partition and
  the owner map are computed once and shared by all ranks instead of being
  rebuilt P times by ``RankState.from_hierarchy``.

Scale cells pin exact request/byte counters and banded bandwidths, but no
golden trace digests: a P=1024 event stream is large, and determinism is
already enforced by the 37 figure cells.  Host wall-clock cost per
simulated cell is recorded informationally (never compared -- it measures
the host, not the model).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..amr.partition import BlockPartition
from ..enzo.meta import HierarchyMeta
from ..enzo.state import RankState, make_owner_map
from ..mpi.runner import run_spmd
from ..topology.presets import PRESETS
from .baselines import Trend
from .workloads import build_scale_workload

__all__ = [
    "SCALE_BASELINE_PATH",
    "SCALE_MATRIX",
    "SCALE_TRENDS",
    "ScaleCell",
    "build_scale_states",
    "compare_scale",
    "format_scale_report",
    "load_scale_baseline",
    "run_scale_cell",
    "run_scale_matrix",
    "save_scale_baseline",
    "scale_chart",
    "select_scale_cells",
]

SCALE_SCHEMA = 1
SCALE_BASELINE_PATH = "BENCH_scale.json"

#: Default relative tolerance for banded metrics.  Runs are deterministic,
#: so the band only absorbs float formatting and cross-version arithmetic
#: differences, not real variance.
SCALE_RTOL = 0.05

SCALE_PROCS = (16, 64, 128, 512, 1024)
SCALE_STRATEGIES = ("mpi-io", "hdf4")
SCALE_MACHINES = ("origin2000", "chiba_city")

#: Exact-match per-cell metrics (deterministic counters of the run).
EXACT_METRICS = (
    "bytes_written",
    "fs_write_requests",
    "fs_files_created",
    "fs_recoveries",
    "cells",
)

#: Banded per-cell metrics (relative tolerance).
BANDED_METRICS = ("write_bw", "write_s")


@dataclass(frozen=True)
class ScaleCell:
    """One point of the weak-scaling sweep."""

    machine: str
    strategy: str
    nprocs: int

    @property
    def id(self) -> str:
        return f"{self.machine}:{self.strategy}:P{self.nprocs}"


SCALE_MATRIX: tuple[ScaleCell, ...] = tuple(
    ScaleCell(machine, strategy, nprocs)
    for machine in SCALE_MACHINES
    for strategy in SCALE_STRATEGIES
    for nprocs in SCALE_PROCS
)


def _cid(machine: str, strategy: str, nprocs: int) -> str:
    return ScaleCell(machine, strategy, nprocs).id


def _scaling_trends() -> tuple[Trend, ...]:
    """The pinned weak-scaling results, per machine.

    ``P_hi``/``P_lo`` are the sweep's extremes; ratio trends compare how
    each strategy's cost *grows* with P, which pins the paper's
    architectural claim without pinning absolute bandwidths.
    """
    lo, hi = SCALE_PROCS[0], SCALE_PROCS[-1]
    trends: list[Trend] = []
    for m in SCALE_MACHINES:
        trends.append(Trend(
            id=f"scale-fpg-files-explode-{m}",
            description=(
                f"{m}: the file-per-grid namespace grows ~linearly with P "
                f"while the shared-file strategy creates O(1) files "
                f"(P={lo}->P={hi})"
            ),
            metric="fs_files_created",
            left=_cid(m, "hdf4", hi), left_div=_cid(m, "hdf4", lo),
            relation="gt",
            right=_cid(m, "mpi-io", hi), right_div=_cid(m, "mpi-io", lo),
        ))
        trends.append(Trend(
            id=f"scale-fpg-time-explodes-{m}",
            description=(
                f"{m}: file-per-grid dump time grows faster with P than "
                f"the shared-file collective dump time (P={lo}->P={hi})"
            ),
            metric="write_s",
            left=_cid(m, "hdf4", hi), left_div=_cid(m, "hdf4", lo),
            relation="gt",
            right=_cid(m, "mpi-io", hi), right_div=_cid(m, "mpi-io", lo),
        ))
        trends.append(Trend(
            id=f"scale-collective-wins-at-{hi}-{m}",
            description=(
                f"{m}: at P={hi} the shared-file collective strategy "
                f"sustains higher aggregate write bandwidth than "
                f"file-per-grid"
            ),
            metric="write_bw",
            left=_cid(m, "mpi-io", hi),
            relation="gt",
            right=_cid(m, "hdf4", hi),
        ))
        trends.append(Trend(
            id=f"scale-collective-graceful-{m}",
            description=(
                f"{m}: shared-file collective bandwidth does not collapse "
                f"under weak scaling (P={hi} sustains at least half the "
                f"P={lo} aggregate bandwidth; file-per-grid falls below)"
            ),
            metric="write_bw",
            left=_cid(m, "mpi-io", hi), left_div=_cid(m, "mpi-io", lo),
            relation="gt",
            right=_cid(m, "hdf4", hi), right_div=_cid(m, "hdf4", lo),
        ))
    return tuple(trends)


SCALE_TRENDS: tuple[Trend, ...] = _scaling_trends()


# -- running ------------------------------------------------------------------


def build_scale_states(hierarchy, nprocs: int) -> list[RankState]:
    """Every rank's :class:`RankState`, with the shared parts hoisted.

    ``RankState.from_hierarchy`` rebuilds the hierarchy metadata and owner
    map per rank -- O(P * grids) work that dwarfs the simulated I/O at
    P=1024.  Here meta, partition and owner map are computed once and
    shared (they are read-only during a dump), leaving only the per-rank
    top-grid piece extraction.
    """
    meta = HierarchyMeta.from_hierarchy(hierarchy)
    partition = BlockPartition(hierarchy.root.dims, nprocs)
    owner = make_owner_map(meta, nprocs, policy="round_robin")
    rank_subgrids: list[dict] = [{} for _ in range(nprocs)]
    for gid in sorted(owner):
        rank_subgrids[owner[gid]][gid] = hierarchy[gid]
    root = hierarchy.root
    return [
        RankState(
            rank=rank,
            nprocs=nprocs,
            meta=meta,
            partition=partition,
            top_piece=partition.extract(root, rank),
            subgrids=rank_subgrids[rank],
            owner=owner,
        )
        for rank in range(nprocs)
    ]


def _write_program(comm, states, strategy, base):
    return strategy.write_checkpoint(comm, states[comm.rank], base)


def run_scale_cell(cell: ScaleCell) -> dict:
    """Execute one weak-scaling cell (write-only) and return its record."""
    from ..iostack import registry

    wall0 = time.perf_counter()
    hierarchy = build_scale_workload(cell.nprocs)
    states = build_scale_states(hierarchy, cell.nprocs)
    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    strategy = registry.create(cell.strategy)
    strategy.batch_requests = True  # scale mode: batched per-grid requests
    machine.reset_timing()
    machine.fs.counters.reset()
    res = run_spmd(
        machine,
        _write_program,
        nprocs=cell.nprocs,
        args=(states, strategy, "scale"),
        batch_collectives=True,
    )
    write_s = max(s.elapsed for s in res.results)
    counters = machine.fs.counters
    cells = hierarchy.total_cells()
    wall_s = time.perf_counter() - wall0
    mb = 2**20
    return {
        "machine": cell.machine,
        "strategy": cell.strategy,
        "nprocs": cell.nprocs,
        "cells": cells,
        "write_s": round(float(write_s), 9),
        "write_bw": round(counters.bytes_written / write_s / mb, 6),
        "bytes_written": int(counters.bytes_written),
        "fs_write_requests": int(counters.writes),
        "fs_files_created": len(machine.fs.store.listdir()),
        "fs_recoveries": int(counters.recoveries),
        # Host cost, informational only (measures the machine running the
        # simulator, not the simulated machine; never gate on it).
        "wall_s": round(wall_s, 3),
        "wall_us_per_cell": round(wall_s / cells * 1e6, 3),
    }


def run_scale_matrix(
    cells: list[ScaleCell] | None = None, *, progress=None
) -> dict:
    """Run ``cells`` (default: the full sweep) and assemble the payload."""
    cells = list(SCALE_MATRIX) if cells is None else cells
    records: dict[str, dict] = {}
    for cell in cells:
        if progress:
            progress(f"running {cell.id}")
        records[cell.id] = run_scale_cell(cell)
    trends = [
        _evaluate_trend(t, records)
        for t in SCALE_TRENDS
        if all(c in records for c in t.cells)
    ]
    return {"schema": SCALE_SCHEMA, "rtol": SCALE_RTOL,
            "cells": records, "trends": trends}


def _evaluate_trend(t: Trend, records: dict) -> dict:
    lhs = records[t.left][t.metric]
    rhs = records[t.right][t.metric]
    out = {
        "id": t.id,
        "description": t.description,
        "metric": t.metric,
        "left": t.left,
        "relation": t.relation,
        "right": t.right,
    }
    if t.left_div is not None:
        lhs /= records[t.left_div][t.metric] or 1.0
        out["left_div"] = t.left_div
    if t.right_div is not None:
        rhs /= records[t.right_div][t.metric] or 1.0
        out["right_div"] = t.right_div
    out["lhs"] = round(float(lhs), 6)
    out["rhs"] = round(float(rhs), 6)
    out["ok"] = t.holds(lhs, rhs)
    return out


def select_scale_cells(specs: list[str] | None) -> list[ScaleCell]:
    """Cells matching ``MACHINE[:STRATEGY[:P]]`` specs (all when empty)."""
    if not specs:
        return list(SCALE_MATRIX)
    out: list[ScaleCell] = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) > 3:
            raise ValueError(f"bad --cell spec {spec!r} "
                             "(want MACHINE[:STRATEGY[:P]])")
        machine = parts[0]
        strategy = parts[1] if len(parts) > 1 and parts[1] else None
        nprocs = None
        if len(parts) > 2 and parts[2]:
            p = parts[2].lstrip("Pp")
            if not p.isdigit():
                raise ValueError(f"bad --cell spec {spec!r}: "
                                 f"{parts[2]!r} is not a processor count")
            nprocs = int(p)
        matched = [
            c for c in SCALE_MATRIX
            if c.machine == machine
            and (strategy is None or c.strategy == strategy)
            and (nprocs is None or c.nprocs == nprocs)
        ]
        if not matched:
            raise ValueError(f"--cell spec {spec!r} matches no scale cell")
        out.extend(c for c in matched if c not in out)
    return out


# -- baseline artifact --------------------------------------------------------


def load_scale_baseline(path: str = SCALE_BASELINE_PATH) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if not isinstance(payload, dict) or "cells" not in payload:
        raise ValueError(f"{path} is not a scale baseline (no 'cells' key)")
    return payload


def save_scale_baseline(payload: dict, path: str = SCALE_BASELINE_PATH) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


# -- comparison ---------------------------------------------------------------


class ScaleReport:
    """Outcome of one compare: violations plus coverage counts."""

    def __init__(self, violations: list[dict], cells_checked: int,
                 trends_checked: int):
        self.violations = violations
        self.cells_checked = cells_checked
        self.trends_checked = trends_checked

    @property
    def ok(self) -> bool:
        return not self.violations


def compare_scale(current: dict, baseline: dict, *,
                  rtol: float | None = None) -> ScaleReport:
    """Compare a fresh sweep against the committed ``BENCH_scale.json``.

    Same contract as the figure gate: only cells present in ``current``
    are compared; a selected cell missing from the baseline is itself a
    violation; trend assertions are evaluated against the live run.
    """
    rtol = baseline.get("rtol", SCALE_RTOL) if rtol is None else rtol
    violations: list[dict] = []
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    for cell_id, cur in sorted(cur_cells.items()):
        base = base_cells.get(cell_id)
        if base is None:
            violations.append({
                "cell": cell_id, "kind": "missing-cell", "metric": "-",
                "current": "-", "baseline": "-",
                "detail": "cell not in baseline (run --update-baseline)",
            })
            continue
        for metric in EXACT_METRICS:
            if cur[metric] != base[metric]:
                violations.append({
                    "cell": cell_id, "kind": "count", "metric": metric,
                    "current": cur[metric], "baseline": base[metric],
                    "detail": "exact-match counter changed",
                })
        for metric in BANDED_METRICS:
            b, c = base[metric], cur[metric]
            if b == 0 and c == 0:
                continue
            delta = (c - b) / (abs(b) or 1.0)
            if abs(delta) > rtol:
                violations.append({
                    "cell": cell_id, "kind": "band", "metric": metric,
                    "current": c, "baseline": b,
                    "detail": f"{delta:+.1%} vs baseline (band ±{rtol:.0%})",
                })
    for trend in current.get("trends", []):
        if not trend["ok"]:
            violations.append({
                "cell": f"{trend['left']} vs {trend['right']}",
                "kind": "trend", "metric": trend["metric"],
                "current": f"{trend['lhs']:.4g} {trend['relation']}? "
                           f"{trend['rhs']:.4g}",
                "baseline": "scaling law",
                "detail": f"{trend['id']}: {trend['description']}",
            })
    return ScaleReport(
        violations, len(cur_cells), len(current.get("trends", []))
    )


def format_scale_report(report: ScaleReport, *,
                        title: str = "repro scale") -> str:
    from ..core.report import format_table

    lines = [title, "=" * len(title)]
    lines.append(
        f"{report.cells_checked} cells, {report.trends_checked} "
        f"scaling-trend assertions checked"
    )
    if report.ok:
        lines.append("gate: PASS (counters exact, bandwidth in band, "
                     "all scaling trends hold)")
        return "\n".join(lines)
    lines.append(f"gate: FAIL ({len(report.violations)} violation(s))\n")
    rows = [
        [v["cell"], v["kind"], v["metric"], str(v["baseline"]),
         str(v["current"]), v["detail"]]
        for v in report.violations
    ]
    lines.append(format_table(
        ["cell", "check", "metric", "baseline", "current", "why"], rows
    ))
    return "\n".join(lines)


def scale_chart(records: dict) -> str:
    """Aggregate write bandwidth vs processor count, per machine."""
    from .figures import render_figure

    out = []
    for machine in SCALE_MACHINES:
        series: dict[str, dict] = {}
        for rec in records.values():
            if rec["machine"] != machine:
                continue
            series.setdefault(rec["strategy"], {})[
                f"P={rec['nprocs']}"
            ] = rec["write_bw"]
        if not series:
            continue
        out.append(render_figure(
            f"weak scaling -- {machine} -- aggregate write bandwidth",
            {k: dict(sorted(v.items(), key=lambda i: int(i[0][2:])))
             for k, v in series.items()},
            unit="MB/s",
        ))
    return "\n\n".join(out)
