"""Weak-scaling sweeps past the paper's processor counts (``repro scale``).

The paper measures P <= 64; this module pushes the same strategy stack to
P in {16, 64, 128, 512, 1024} on synthetic weak-scaling workloads (per-rank
data constant, see :func:`~repro.bench.workloads.build_scale_workload`) and
pins the *scaling trends* -- shared-file collective I/O degrades gracefully
while file-per-grid metadata cost explodes with P -- as a committed
``BENCH_scale.json`` gate.

Feasibility rests on the scale-mode fast paths, none of which are enabled
on the pinned-digest figure cells:

* ``batch_collectives=True`` -- collectives run through the rendezvous
  engine (:mod:`repro.mpi.batch`): O(P) schedule crossings per collective
  instead of O(P log P .. P^2) simulated messages;
* ``strategy.batch_requests = True`` -- a grid file's array writes are
  posted as one batched request (one schedule-point crossing);
* hoisted state construction -- ``HierarchyMeta``, the block partition and
  the owner map are computed once and shared by all ranks instead of being
  rebuilt P times by ``RankState.from_hierarchy``.

Scale cells pin exact request/byte counters and banded bandwidths, but no
golden trace digests: a P=1024 event stream is large, and determinism is
already enforced by the 37 figure cells.  Host wall-clock cost per cell
is recorded by the executor's telemetry (``BENCH_timings.json``), never
in the records themselves -- it measures the host, not the model, and
keeping it out of the records is what makes them byte-identical across
serial, parallel and cache-replay execution.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from ..amr.partition import BlockPartition
from ..enzo.meta import HierarchyMeta
from ..enzo.state import RankState, make_owner_map
from ..mpi.runner import run_spmd
from ..topology.presets import PRESETS
from .baselines import Trend
from .cellrunner import (
    CellFamily,
    GateReport,
    compare_records,
    evaluate_trend,
    format_gate_report,
    register_family,
)
from .workloads import build_scale_workload

__all__ = [
    "SCALE_BASELINE_PATH",
    "SCALE_MATRIX",
    "SCALE_TRENDS",
    "ScaleCell",
    "build_scale_states",
    "compare_scale",
    "format_scale_report",
    "load_scale_baseline",
    "run_scale_cell",
    "run_scale_matrix",
    "save_scale_baseline",
    "scale_chart",
    "select_scale_cells",
]

SCALE_SCHEMA = 1
SCALE_BASELINE_PATH = "BENCH_scale.json"

#: Default relative tolerance for banded metrics.  Runs are deterministic,
#: so the band only absorbs float formatting and cross-version arithmetic
#: differences, not real variance.
SCALE_RTOL = 0.05

SCALE_PROCS = (16, 64, 128, 512, 1024)
SCALE_STRATEGIES = ("mpi-io", "hdf4")
SCALE_MACHINES = ("origin2000", "chiba_city")

#: Exact-match per-cell metrics (deterministic counters of the run).
EXACT_METRICS = (
    "bytes_written",
    "fs_write_requests",
    "fs_files_created",
    "fs_recoveries",
    "cells",
)

#: Banded per-cell metrics (relative tolerance).
BANDED_METRICS = ("write_bw", "write_s")


@dataclass(frozen=True)
class ScaleCell:
    """One point of the weak-scaling sweep."""

    machine: str
    strategy: str
    nprocs: int

    @property
    def id(self) -> str:
        return f"{self.machine}:{self.strategy}:P{self.nprocs}"


SCALE_MATRIX: tuple[ScaleCell, ...] = tuple(
    ScaleCell(machine, strategy, nprocs)
    for machine in SCALE_MACHINES
    for strategy in SCALE_STRATEGIES
    for nprocs in SCALE_PROCS
)


def _cid(machine: str, strategy: str, nprocs: int) -> str:
    return ScaleCell(machine, strategy, nprocs).id


def _scaling_trends() -> tuple[Trend, ...]:
    """The pinned weak-scaling results, per machine.

    ``P_hi``/``P_lo`` are the sweep's extremes; ratio trends compare how
    each strategy's cost *grows* with P, which pins the paper's
    architectural claim without pinning absolute bandwidths.
    """
    lo, hi = SCALE_PROCS[0], SCALE_PROCS[-1]
    trends: list[Trend] = []
    for m in SCALE_MACHINES:
        trends.append(Trend(
            id=f"scale-fpg-files-explode-{m}",
            description=(
                f"{m}: the file-per-grid namespace grows ~linearly with P "
                f"while the shared-file strategy creates O(1) files "
                f"(P={lo}->P={hi})"
            ),
            metric="fs_files_created",
            left=_cid(m, "hdf4", hi), left_div=_cid(m, "hdf4", lo),
            relation="gt",
            right=_cid(m, "mpi-io", hi), right_div=_cid(m, "mpi-io", lo),
        ))
        trends.append(Trend(
            id=f"scale-fpg-time-explodes-{m}",
            description=(
                f"{m}: file-per-grid dump time grows faster with P than "
                f"the shared-file collective dump time (P={lo}->P={hi})"
            ),
            metric="write_s",
            left=_cid(m, "hdf4", hi), left_div=_cid(m, "hdf4", lo),
            relation="gt",
            right=_cid(m, "mpi-io", hi), right_div=_cid(m, "mpi-io", lo),
        ))
        trends.append(Trend(
            id=f"scale-collective-wins-at-{hi}-{m}",
            description=(
                f"{m}: at P={hi} the shared-file collective strategy "
                f"sustains higher aggregate write bandwidth than "
                f"file-per-grid"
            ),
            metric="write_bw",
            left=_cid(m, "mpi-io", hi),
            relation="gt",
            right=_cid(m, "hdf4", hi),
        ))
        trends.append(Trend(
            id=f"scale-collective-graceful-{m}",
            description=(
                f"{m}: shared-file collective bandwidth does not collapse "
                f"under weak scaling (P={hi} sustains at least half the "
                f"P={lo} aggregate bandwidth; file-per-grid falls below)"
            ),
            metric="write_bw",
            left=_cid(m, "mpi-io", hi), left_div=_cid(m, "mpi-io", lo),
            relation="gt",
            right=_cid(m, "hdf4", hi), right_div=_cid(m, "hdf4", lo),
        ))
    return tuple(trends)


SCALE_TRENDS: tuple[Trend, ...] = _scaling_trends()


# -- running ------------------------------------------------------------------


def build_scale_states(hierarchy, nprocs: int) -> list[RankState]:
    """Every rank's :class:`RankState`, with the shared parts hoisted.

    ``RankState.from_hierarchy`` rebuilds the hierarchy metadata and owner
    map per rank -- O(P * grids) work that dwarfs the simulated I/O at
    P=1024.  Here meta, partition and owner map are computed once and
    shared (they are read-only during a dump), leaving only the per-rank
    top-grid piece extraction.
    """
    meta = HierarchyMeta.from_hierarchy(hierarchy)
    partition = BlockPartition(hierarchy.root.dims, nprocs)
    owner = make_owner_map(meta, nprocs, policy="round_robin")
    rank_subgrids: list[dict] = [{} for _ in range(nprocs)]
    for gid in sorted(owner):
        rank_subgrids[owner[gid]][gid] = hierarchy[gid]
    root = hierarchy.root
    return [
        RankState(
            rank=rank,
            nprocs=nprocs,
            meta=meta,
            partition=partition,
            top_piece=partition.extract(root, rank),
            subgrids=rank_subgrids[rank],
            owner=owner,
        )
        for rank in range(nprocs)
    ]


def _write_program(comm, states, strategy, base):
    return strategy.write_checkpoint(comm, states[comm.rank], base)


def run_scale_cell(cell: ScaleCell) -> dict:
    """Execute one weak-scaling cell (write-only) and return its record."""
    from ..iostack import registry

    hierarchy = build_scale_workload(cell.nprocs)
    states = build_scale_states(hierarchy, cell.nprocs)
    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    strategy = registry.create(cell.strategy)
    strategy.batch_requests = True  # scale mode: batched per-grid requests
    machine.reset_timing()
    machine.fs.counters.reset()
    res = run_spmd(
        machine,
        _write_program,
        nprocs=cell.nprocs,
        args=(states, strategy, "scale"),
        batch_collectives=True,
    )
    write_s = max(s.elapsed for s in res.results)
    counters = machine.fs.counters
    return {
        "machine": cell.machine,
        "strategy": cell.strategy,
        "nprocs": cell.nprocs,
        "cells": hierarchy.total_cells(),
        "write_s": round(float(write_s), 9),
        "write_bw": round(counters.bytes_written / write_s / 2**20, 6),
        "bytes_written": int(counters.bytes_written),
        "fs_write_requests": int(counters.writes),
        "fs_files_created": len(machine.fs.store.listdir()),
        "fs_recoveries": int(counters.recoveries),
    }


def run_scale_matrix(
    cells: list[ScaleCell] | None = None,
    *,
    progress=None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
) -> dict:
    """Run ``cells`` (default: the full sweep) and assemble the payload.

    ``jobs``/``cache``/``telemetry`` are threaded to the executor; the
    default is the serial, uncached in-process path.
    """
    from .executor import run_cells

    cells = list(SCALE_MATRIX) if cells is None else cells
    records = run_cells("scale", cells, jobs=jobs, cache=cache,
                        telemetry=telemetry, progress=progress)
    trends = [
        evaluate_trend(t, records)
        for t in SCALE_TRENDS
        if all(c in records for c in t.cells)
    ]
    return {"schema": SCALE_SCHEMA, "rtol": SCALE_RTOL,
            "cells": records, "trends": trends}


def select_scale_cells(specs: list[str] | None) -> list[ScaleCell]:
    """Cells matching ``MACHINE[:STRATEGY[:P]]`` specs (all when empty)."""
    if not specs:
        return list(SCALE_MATRIX)
    out: list[ScaleCell] = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) > 3:
            raise ValueError(f"bad --cell spec {spec!r} "
                             "(want MACHINE[:STRATEGY[:P]])")
        machine = parts[0]
        strategy = parts[1] if len(parts) > 1 and parts[1] else None
        nprocs = None
        if len(parts) > 2 and parts[2]:
            p = parts[2].lstrip("Pp")
            if not p.isdigit():
                raise ValueError(f"bad --cell spec {spec!r}: "
                                 f"{parts[2]!r} is not a processor count")
            nprocs = int(p)
        matched = [
            c for c in SCALE_MATRIX
            if c.machine == machine
            and (strategy is None or c.strategy == strategy)
            and (nprocs is None or c.nprocs == nprocs)
        ]
        if not matched:
            raise ValueError(f"--cell spec {spec!r} matches no scale cell")
        out.extend(c for c in matched if c not in out)
    return out


# -- baseline artifact --------------------------------------------------------


def load_scale_baseline(path: str = SCALE_BASELINE_PATH) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if not isinstance(payload, dict) or "cells" not in payload:
        raise ValueError(f"{path} is not a scale baseline (no 'cells' key)")
    return payload


def save_scale_baseline(payload: dict, path: str = SCALE_BASELINE_PATH) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


# -- comparison (shared engine in repro.bench.cellrunner) ---------------------

#: Kept as the public name of this gate's report type.
ScaleReport = GateReport


def compare_scale(current: dict, baseline: dict, *,
                  rtol: float | None = None) -> GateReport:
    """Compare a fresh sweep against the committed ``BENCH_scale.json``.

    Same contract as the figure gate: only cells present in ``current``
    are compared; a selected cell missing from the baseline is itself a
    violation; trend assertions are evaluated against the live run.
    """
    return compare_records(
        current,
        baseline,
        exact_metrics=EXACT_METRICS,
        banded_metrics=BANDED_METRICS,
        default_rtol=SCALE_RTOL,
        rtol=rtol,
        trend_baseline="scaling law",
    )


def format_scale_report(report: GateReport, *,
                        title: str = "repro scale") -> str:
    return format_gate_report(
        report,
        title=title,
        pass_detail="counters exact, bandwidth in band, "
                    "all scaling trends hold",
        trend_noun="scaling-trend",
    )


# -- executor family ----------------------------------------------------------


def _family_run(cell: ScaleCell, extra: dict) -> dict:
    return run_scale_cell(cell)


register_family(CellFamily(
    name="scale",
    run=_family_run,
    cell_id=lambda c: c.id,
    spec=lambda c, extra: asdict(c),
    describe=lambda c: c.id,
))


def scale_chart(records: dict) -> str:
    """Aggregate write bandwidth vs processor count, per machine."""
    from .figures import render_figure

    out = []
    for machine in SCALE_MACHINES:
        series: dict[str, dict] = {}
        for rec in records.values():
            if rec["machine"] != machine:
                continue
            series.setdefault(rec["strategy"], {})[
                f"P={rec['nprocs']}"
            ] = rec["write_bw"]
        if not series:
            continue
        out.append(render_figure(
            f"weak scaling -- {machine} -- aggregate write bandwidth",
            {k: dict(sorted(v.items(), key=lambda i: int(i[0][2:])))
             for k, v in series.items()},
            unit="MB/s",
        ))
    return "\n\n".join(out)
