"""Paper-figure conformance & performance-regression harness.

The engine behind ``python -m repro regress``: runs the Figure 5-10 cell
matrix declared in :mod:`repro.bench.baselines` through the simulated
clock, reduces every cell to a canonical result record (bandwidths, phase
breakdown, file-system counters, and a SHA-256 golden digest of the
canonicalised IOTrace event stream), and compares the run against the
committed ``BENCH_figures.json`` baseline on three axes:

1. **determinism** -- golden-trace digests must match the baseline exactly
   (any drift in the event stream, ordering included, is a failure);
2. **bandwidth bands** -- write/read bandwidth per cell must stay within a
   relative tolerance of the baseline (default
   :data:`~repro.bench.baselines.DEFAULT_RTOL`);
3. **paper trends** -- the qualitative results of Figures 5-10
   (:data:`~repro.bench.baselines.TRENDS`) must hold in the *current* run,
   so a perf PR can never silently invert a paper result even if it also
   updates the baseline.

Exit-code contract of the CLI wrapper: 0 = gate green, 1 = regression
(band, digest, count, or trend violation), 2 = usage error (missing or
corrupt baseline, unknown cell, malformed perturbation).
"""

from __future__ import annotations

import numpy as np

from ..core.report import format_table
from ..core.trace import trace_filesystem
from ..mpi.datatypes import FLOAT64, Subarray
from ..mpi.runner import run_spmd
from ..mpiio.file import File
from ..mpiio.hints import Hints
from ..topology.presets import PRESETS
from .baselines import (
    BASELINE_SCHEMA,
    DEFAULT_RTOL,
    MATRIX,
    TRENDS,
    Cell,
)
from .runners import run_overlap_experiment, run_traced_experiment
from .workloads import build_initial_workload, build_workload

__all__ = [
    "run_cell",
    "run_matrix",
    "compare",
    "RegressionReport",
    "format_report",
    "parse_perturbations",
]

#: Integer per-cell metrics that must match the baseline exactly (they are
#: request/byte counters of a deterministic run; a drift here is a
#: behaviour change even when the bandwidth band still holds).
EXACT_METRICS = (
    "bytes_written",
    "bytes_read",
    "fs_write_requests",
    "fs_read_requests",
    "fs_recoveries",
    "trace_events",
)

#: Banded per-cell metrics (relative tolerance).
BANDED_METRICS = ("write_bw", "read_bw")


def _make_strategy(name: str, hints: Hints | None):
    from ..iostack import registry

    return registry.create(name, hints=hints)


# -- the fig5 access-pattern cell --------------------------------------------


def _strided_write_program(comm, collective: bool, hints: Hints):
    """Each rank writes a (1, Block, 1) slab of a 32^3 array (Fig 5)."""
    shape = (32, 32, 32)
    base, rem = divmod(shape[1], comm.size)
    lo = comm.rank * base + min(comm.rank, rem)
    n = base + (1 if comm.rank < rem else 0)
    ftype = Subarray(shape, (shape[0], n, shape[2]), (0, lo, 0), FLOAT64)
    fh = File.open(comm, "fig5", "w", hints=hints)
    fh.set_view(0, FLOAT64, ftype)
    data = np.full((shape[0], n, shape[2]), float(comm.rank))
    t0 = comm.clock
    if collective:
        fh.write_all(data)
    else:
        fh.write(data)
    elapsed = comm.clock - t0
    fh.close()
    return elapsed


def _run_pattern_cell(cell: Cell, hints: Hints | None) -> dict:
    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    hints = hints if hints is not None else Hints(ds_write=False)
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        res = run_spmd(
            machine,
            _strided_write_program,
            nprocs=cell.nprocs,
            args=(cell.strategy == "two-phase", hints),
        )
    finally:
        trace.detach()
    write_s = max(res.results)
    counters = machine.fs.counters
    return _record(
        cell,
        write_s=write_s,
        read_s=0.0,
        write_phases={},
        read_phases={},
        bytes_written=counters.bytes_written,
        bytes_read=0,
        fs_write_requests=counters.writes,
        fs_read_requests=0,
        fs_recoveries=counters.recoveries,
        trace=trace,
    )


# -- figure cells -------------------------------------------------------------


def _run_figure_cell(cell: Cell, hints: Hints | None) -> dict:
    from ..iostack import registry

    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    if hints is not None and not registry.get(cell.strategy).takes_hints:
        raise ValueError(
            f"cannot perturb {cell.id}: the {cell.strategy} strategy "
            "takes no MPI-IO hints"
        )
    strategy = _make_strategy(cell.strategy, hints)
    result, trace = run_traced_experiment(
        machine,
        strategy,
        build_workload(cell.problem),
        nprocs=cell.nprocs,
        read_hierarchy=build_initial_workload(cell.problem),
        do_read=cell.do_read,
    )
    return _record(
        cell,
        write_s=result.write_time,
        read_s=result.read_time,
        write_phases=result.write_phases,
        read_phases=result.read_phases,
        bytes_written=result.bytes_written,
        bytes_read=result.bytes_read,
        fs_write_requests=result.fs_write_requests,
        fs_read_requests=result.fs_read_requests,
        fs_recoveries=result.fs_recoveries,
        trace=trace,
    )


def _is_async_strategy(name: str) -> bool:
    from ..iostack import registry

    try:
        comp = registry.get(name)
    except ValueError:
        return False
    return bool(comp.options.get("async"))


def _run_overlap_cell(cell: Cell, hints: Hints | None) -> dict:
    """Async strategies are measured under compute/checkpoint overlap.

    A bare checkpoint has nothing to hide the drain behind, so an async
    cell runs the Enzo driver (3 cycles, dump every cycle, write-behind
    on): ``write_s`` is the exposed I/O time and ``write_bw`` the
    *effective* bandwidth the application observes.
    """
    from ..enzo.simulation import EnzoConfig
    from ..iostack import registry

    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    if hints is not None and not registry.get(cell.strategy).takes_hints:
        raise ValueError(
            f"cannot perturb {cell.id}: the {cell.strategy} strategy "
            "takes no MPI-IO hints"
        )
    strategy = _make_strategy(cell.strategy, hints)
    config = EnzoConfig(
        problem=cell.problem, ncycles=3, dump_every=1, overlap=True
    )
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        result = run_overlap_experiment(
            machine, strategy, config, nprocs=cell.nprocs
        )
    finally:
        trace.detach()
    return _record(
        cell,
        write_s=result.write_time,
        read_s=0.0,
        write_phases=result.write_phases,
        read_phases={},
        bytes_written=result.bytes_written,
        bytes_read=0,
        fs_write_requests=result.fs_write_requests,
        fs_read_requests=0,
        fs_recoveries=result.fs_recoveries,
        trace=trace,
    )


def _record(cell: Cell, *, trace, **kw) -> dict:
    mb = 2**20
    write_s, read_s = float(kw["write_s"]), float(kw["read_s"])
    bytes_written, bytes_read = int(kw["bytes_written"]), int(kw["bytes_read"])
    return {
        "figure": cell.figure,
        "machine": cell.machine,
        "problem": cell.problem,
        "strategy": cell.strategy,
        "nprocs": cell.nprocs,
        "write_s": round(write_s, 9),
        "read_s": round(read_s, 9),
        "write_bw": round(bytes_written / write_s / mb, 6)
        if write_s > 0
        else 0.0,
        "read_bw": round(bytes_read / read_s / mb, 6) if read_s > 0 else 0.0,
        "write_phases": {
            k: round(float(v), 9) for k, v in kw["write_phases"].items()
        },
        "read_phases": {
            k: round(float(v), 9) for k, v in kw["read_phases"].items()
        },
        "bytes_written": bytes_written,
        "bytes_read": bytes_read,
        "fs_write_requests": int(kw["fs_write_requests"]),
        "fs_read_requests": int(kw["fs_read_requests"]),
        "fs_recoveries": int(kw["fs_recoveries"]),
        "trace_events": len(trace),
        "trace_digest": trace.digest(),
    }


def run_cell(cell: Cell, *, hints: Hints | None = None) -> dict:
    """Execute one cell and return its canonical result record.

    ``hints`` overrides the strategy's MPI-IO tuning hints -- the hook the
    perturbation acceptance test (and ``--perturb``) uses to prove the gate
    actually trips.
    """
    if cell.figure == "fig5":
        return _run_pattern_cell(cell, hints)
    if _is_async_strategy(cell.strategy):
        return _run_overlap_cell(cell, hints)
    return _run_figure_cell(cell, hints)


def run_matrix(
    cells: list[Cell] | None = None,
    *,
    perturb: dict[str, dict] | None = None,
    progress=None,
) -> dict:
    """Run ``cells`` (default: the full matrix) and assemble the payload.

    Returns a baseline-shaped dict (``schema``/``cells``/``trends``) ready
    to be compared or committed.  ``perturb`` maps cell ids to hint-field
    overrides (e.g. ``{"fig6:mpi-io:8": {"cb_buffer_size": 2 * 2**20}}``).
    """
    cells = list(MATRIX) if cells is None else cells
    perturb = perturb or {}
    records: dict[str, dict] = {}
    for cell in cells:
        if progress:
            progress(f"running {cell.id} ({cell.machine}, {cell.problem})")
        hints = None
        if cell.id in perturb:
            hints = Hints(**perturb[cell.id])
        records[cell.id] = run_cell(cell, hints=hints)
    trends = [
        _evaluate_trend(t, records)
        for t in TRENDS
        if all(c in records for c in t.cells)
    ]
    return {"schema": BASELINE_SCHEMA, "rtol": DEFAULT_RTOL,
            "cells": records, "trends": trends}


def _evaluate_trend(t, records: dict) -> dict:
    """One trend against live records; ratio trends divide each side."""
    lhs = records[t.left][t.metric]
    rhs = records[t.right][t.metric]
    out = {
        "id": t.id,
        "description": t.description,
        "metric": t.metric,
        "left": t.left,
        "relation": t.relation,
        "right": t.right,
    }
    if t.left_div is not None:
        lhs /= records[t.left_div][t.metric] or 1.0
        out["left_div"] = t.left_div
    if t.right_div is not None:
        rhs /= records[t.right_div][t.metric] or 1.0
        out["right_div"] = t.right_div
    out["lhs"] = round(float(lhs), 6)
    out["rhs"] = round(float(rhs), 6)
    out["ok"] = t.holds(lhs, rhs)
    return out


def parse_perturbations(specs: list[str] | None) -> dict[str, dict]:
    """Parse ``--perturb CELLID:KEY=VALUE`` specs into a run_matrix map."""
    out: dict[str, dict] = {}
    for spec in specs or []:
        cell_id, sep, assign = spec.rpartition(":")
        if not sep or "=" not in assign:
            raise ValueError(
                f"bad --perturb spec {spec!r} (want FIG:STRATEGY:NPROCS:KEY=VALUE)"
            )
        key, _, value = assign.partition("=")
        if not hasattr(Hints(), key):
            raise ValueError(f"bad --perturb spec {spec!r}: unknown hint {key!r}")
        current = getattr(Hints(), key)
        if isinstance(current, bool):
            parsed: object = value.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, float):
            parsed = float(value)
        else:
            parsed = int(value)
        out.setdefault(cell_id, {})[key] = parsed
    return out


# -- comparison ---------------------------------------------------------------


class RegressionReport:
    """The outcome of one compare: violations plus coverage counts."""

    def __init__(self, violations: list[dict], cells_checked: int,
                 trends_checked: int):
        self.violations = violations
        self.cells_checked = cells_checked
        self.trends_checked = trends_checked

    @property
    def ok(self) -> bool:
        return not self.violations


def _band_violation(cell_id, metric, cur, base, rtol):
    if base == 0 and cur == 0:
        return None
    denom = abs(base) if base else 1.0
    delta = (cur - base) / denom
    if abs(delta) <= rtol:
        return None
    return {
        "cell": cell_id,
        "kind": "band",
        "metric": metric,
        "current": cur,
        "baseline": base,
        "detail": f"{delta:+.1%} vs baseline (band ±{rtol:.0%})",
    }


def compare(current: dict, baseline: dict, *, rtol: float | None = None
            ) -> RegressionReport:
    """Compare a fresh run against the committed baseline.

    Only cells present in ``current`` are compared (so ``--cell`` subsets
    check their slice of the baseline); a selected cell missing from the
    baseline is itself a violation -- the gate must never silently skip.
    Trend assertions are taken from ``current`` (they were evaluated
    against live numbers by :func:`run_matrix`).
    """
    rtol = baseline.get("rtol", DEFAULT_RTOL) if rtol is None else rtol
    violations: list[dict] = []
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    for cell_id, cur in sorted(cur_cells.items()):
        base = base_cells.get(cell_id)
        if base is None:
            violations.append({
                "cell": cell_id, "kind": "missing-cell", "metric": "-",
                "current": "-", "baseline": "-",
                "detail": "cell not in baseline (run --update-baseline)",
            })
            continue
        if cur["trace_digest"] != base["trace_digest"]:
            violations.append({
                "cell": cell_id, "kind": "digest", "metric": "trace_digest",
                "current": cur["trace_digest"][:18] + "...",
                "baseline": base["trace_digest"][:18] + "...",
                "detail": "golden trace diverged (determinism/behaviour change)",
            })
        for metric in BANDED_METRICS:
            v = _band_violation(cell_id, metric, cur[metric], base[metric], rtol)
            if v:
                violations.append(v)
        for metric in EXACT_METRICS:
            if cur[metric] != base[metric]:
                violations.append({
                    "cell": cell_id, "kind": "count", "metric": metric,
                    "current": cur[metric], "baseline": base[metric],
                    "detail": "exact-match counter changed",
                })
    for trend in current.get("trends", []):
        if not trend["ok"]:
            lhs = trend.get("lhs")
            if lhs is None:  # payloads from before ratio trends
                lhs = cur_cells[trend["left"]][trend["metric"]]
            rhs = trend.get("rhs")
            if rhs is None:
                rhs = cur_cells[trend["right"]][trend["metric"]]
            violations.append({
                "cell": f"{trend['left']} vs {trend['right']}",
                "kind": "trend", "metric": trend["metric"],
                "current": f"{lhs:.4g} {trend['relation']}? {rhs:.4g}",
                "baseline": "paper",
                "detail": f"{trend['id']}: {trend['description']}",
            })
    return RegressionReport(
        violations, len(cur_cells), len(current.get("trends", []))
    )


def format_report(report: RegressionReport, *, title: str = "repro regress"
                  ) -> str:
    """Readable gate outcome: a per-cell diff table naming each violation."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"{report.cells_checked} cells, {report.trends_checked} paper-trend "
        f"assertions checked"
    )
    if report.ok:
        lines.append("gate: PASS (digests exact, bandwidth in band, "
                     "all paper trends hold)")
        return "\n".join(lines)
    lines.append(f"gate: FAIL ({len(report.violations)} violation(s))\n")
    rows = [
        [
            v["cell"],
            v["kind"],
            v["metric"],
            str(v["baseline"]),
            str(v["current"]),
            v["detail"],
        ]
        for v in report.violations
    ]
    lines.append(
        format_table(
            ["cell", "check", "metric", "baseline", "current", "why"], rows
        )
    )
    return "\n".join(lines)
