"""Paper-figure conformance & performance-regression harness.

The engine behind ``python -m repro regress``: runs the Figure 5-10 cell
matrix declared in :mod:`repro.bench.baselines` through the simulated
clock, reduces every cell to a canonical result record (bandwidths, phase
breakdown, file-system counters, and a SHA-256 golden digest of the
canonicalised IOTrace event stream), and compares the run against the
committed ``BENCH_figures.json`` baseline on three axes:

1. **determinism** -- golden-trace digests must match the baseline exactly
   (any drift in the event stream, ordering included, is a failure);
2. **bandwidth bands** -- write/read bandwidth per cell must stay within a
   relative tolerance of the baseline (default
   :data:`~repro.bench.baselines.DEFAULT_RTOL`);
3. **paper trends** -- the qualitative results of Figures 5-10
   (:data:`~repro.bench.baselines.TRENDS`) must hold in the *current* run,
   so a perf PR can never silently invert a paper result even if it also
   updates the baseline.

Exit-code contract of the CLI wrapper: 0 = gate green, 1 = regression
(band, digest, count, or trend violation), 2 = usage error (missing or
corrupt baseline, unknown cell, malformed perturbation).
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from ..core.trace import trace_filesystem
from ..mpi.datatypes import FLOAT64, Subarray
from ..mpi.runner import run_spmd
from ..mpiio.file import File
from ..mpiio.hints import Hints
from ..topology.presets import PRESETS
from .baselines import (
    BASELINE_SCHEMA,
    DEFAULT_RTOL,
    MATRIX,
    TRENDS,
    Cell,
)
from .cellrunner import (
    CellFamily,
    GateReport,
    compare_records,
    evaluate_trend,
    format_gate_report,
    register_family,
)
from .runners import run_overlap_experiment, run_traced_experiment
from .workloads import build_initial_workload, build_workload

__all__ = [
    "run_cell",
    "run_matrix",
    "compare",
    "RegressionReport",
    "format_report",
    "parse_perturbations",
]

#: Integer per-cell metrics that must match the baseline exactly (they are
#: request/byte counters of a deterministic run; a drift here is a
#: behaviour change even when the bandwidth band still holds).
#: Scenario cadence counters: only present on cadence-cell records (the
#: comparison treats absent-on-both-sides as a match).
CADENCE_METRICS = (
    "ckpt_dumps",
    "plot_dumps",
    "redshift_dumps",
    "ckpt_bytes",
    "plot_bytes",
)

EXACT_METRICS = (
    "bytes_written",
    "bytes_read",
    "fs_write_requests",
    "fs_read_requests",
    "fs_recoveries",
    "trace_events",
    "file_digest",
) + CADENCE_METRICS

#: Banded per-cell metrics (relative tolerance).
BANDED_METRICS = ("write_bw", "read_bw")


def _make_strategy(name: str, hints: Hints | None):
    from ..iostack import registry

    return registry.create(name, hints=hints)


def _store_digest(store, paths: tuple[str, ...]) -> str:
    """SHA-256 over the committed bytes of ``paths`` (name, size, data)."""
    import hashlib

    h = hashlib.sha256()
    for path in paths:
        f = store.open(path)
        h.update(path.encode())
        h.update(str(f.size).encode())
        h.update(f.read(0, f.size))
    return h.hexdigest()


# -- the fig5 access-pattern cell --------------------------------------------


def _strided_write_program(comm, collective: bool, hints: Hints):
    """Each rank writes a (1, Block, 1) slab of a 32^3 array (Fig 5)."""
    shape = (32, 32, 32)
    base, rem = divmod(shape[1], comm.size)
    lo = comm.rank * base + min(comm.rank, rem)
    n = base + (1 if comm.rank < rem else 0)
    ftype = Subarray(shape, (shape[0], n, shape[2]), (0, lo, 0), FLOAT64)
    fh = File.open(comm, "fig5", "w", hints=hints)
    fh.set_view(0, FLOAT64, ftype)
    data = np.full((shape[0], n, shape[2]), float(comm.rank))
    t0 = comm.clock
    if collective:
        fh.write_all(data)
    else:
        fh.write(data)
    elapsed = comm.clock - t0
    fh.close()
    return elapsed


def _run_pattern_cell(cell: Cell, hints: Hints | None) -> dict:
    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    hints = hints if hints is not None else Hints(ds_write=False)
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        res = run_spmd(
            machine,
            _strided_write_program,
            nprocs=cell.nprocs,
            args=(cell.strategy == "two-phase", hints),
        )
    finally:
        trace.detach()
    write_s = max(res.results)
    counters = machine.fs.counters
    return _record(
        cell,
        write_s=write_s,
        read_s=0.0,
        write_phases={},
        read_phases={},
        bytes_written=counters.bytes_written,
        bytes_read=0,
        fs_write_requests=counters.writes,
        fs_read_requests=0,
        fs_recoveries=counters.recoveries,
        trace=trace,
    )


# -- figure cells -------------------------------------------------------------


def _run_figure_cell(cell: Cell, hints: Hints | None) -> dict:
    from ..iostack import registry

    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    if hints is not None and not registry.get(cell.strategy).takes_hints:
        raise ValueError(
            f"cannot perturb {cell.id}: the {cell.strategy} strategy "
            "takes no MPI-IO hints"
        )
    strategy = _make_strategy(cell.strategy, hints)
    # The "initial" read path measures the new-simulation read of the
    # pre-refined initial grids; "restart" reads the dump itself back
    # (round-robin whole-subgrid reads), so no separate read hierarchy.
    read_op = getattr(cell, "read_op", "initial")
    read_hierarchy = (
        build_initial_workload(cell.problem) if read_op == "initial" else None
    )
    result, trace = run_traced_experiment(
        machine,
        strategy,
        build_workload(cell.problem),
        nprocs=cell.nprocs,
        read_hierarchy=read_hierarchy,
        read_op=read_op,
        do_read=cell.do_read,
    )
    file_digest = ""
    if registry.get(cell.strategy).format == "scda":
        # scda promises serial equivalence: the committed bytes are pinned
        # so the partition-invariance trends can compare digests across P.
        file_digest = _store_digest(machine.fs.store,
                                    ("ckpt", "ckpt.manifest"))
    return _record(
        cell,
        file_digest=file_digest,
        write_s=result.write_time,
        read_s=result.read_time,
        write_phases=result.write_phases,
        read_phases=result.read_phases,
        bytes_written=result.bytes_written,
        bytes_read=result.bytes_read,
        fs_write_requests=result.fs_write_requests,
        fs_read_requests=result.fs_read_requests,
        fs_recoveries=result.fs_recoveries,
        trace=trace,
    )


def _is_async_strategy(name: str) -> bool:
    from ..iostack import registry

    try:
        comp = registry.get(name)
    except ValueError:
        return False
    return bool(comp.options.get("async"))


def _run_overlap_cell(cell: Cell, hints: Hints | None) -> dict:
    """Async strategies are measured under compute/checkpoint overlap.

    A bare checkpoint has nothing to hide the drain behind, so an async
    cell runs the Enzo driver (3 cycles, dump every cycle, write-behind
    on): ``write_s`` is the exposed I/O time and ``write_bw`` the
    *effective* bandwidth the application observes.
    """
    from ..enzo.simulation import EnzoConfig
    from ..iostack import registry

    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    if hints is not None and not registry.get(cell.strategy).takes_hints:
        raise ValueError(
            f"cannot perturb {cell.id}: the {cell.strategy} strategy "
            "takes no MPI-IO hints"
        )
    strategy = _make_strategy(cell.strategy, hints)
    config = EnzoConfig(
        problem=cell.problem, ncycles=3, dump_every=1, overlap=True
    )
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        result = run_overlap_experiment(
            machine, strategy, config, nprocs=cell.nprocs
        )
    finally:
        trace.detach()
    return _record(
        cell,
        write_s=result.write_time,
        read_s=0.0,
        write_phases=result.write_phases,
        read_phases={},
        bytes_written=result.bytes_written,
        bytes_read=0,
        fs_write_requests=result.fs_write_requests,
        fs_read_requests=0,
        fs_recoveries=result.fs_recoveries,
        trace=trace,
    )


def _is_cadence_cell(cell: Cell) -> bool:
    """True for cells whose scenario runs the two-stream Enzo driver.

    A scenario with a plot-file cadence or redshift-triggered dumps cannot
    be measured by the bare checkpoint experiment -- the paper-style cell
    writes one dump, but the scenario's point is its output *schedule*.
    """
    from ..scenarios import registry as scenario_registry

    try:
        s = scenario_registry.get(cell.problem)
    except (KeyError, ValueError):
        return False
    return bool(s.plot_every or s.output_redshifts)


def _run_cadence_cell(cell: Cell, hints: Hints | None) -> dict:
    """Run a scenario's full output schedule through the Enzo driver.

    Checkpoints (cadence + redshift-triggered) go through the cell's
    strategy; plot files go through the dedicated plot-file writer.  The
    record carries per-stream dump counts and byte totals so the cadence
    trends can compare the two streams of the same run.
    """
    from ..enzo.simulation import EnzoConfig, EnzoSimulation
    from ..iostack import registry
    from ..scenarios import registry as scenario_registry
    from .runners import _merge_phases, _sum_phases

    machine = PRESETS[cell.machine](nprocs=cell.nprocs)
    if hints is not None and not registry.get(cell.strategy).takes_hints:
        raise ValueError(
            f"cannot perturb {cell.id}: the {cell.strategy} strategy "
            "takes no MPI-IO hints"
        )
    strategy = _make_strategy(cell.strategy, hints)
    config = EnzoConfig.from_scenario(scenario_registry.get(cell.problem))
    sim = EnzoSimulation(
        config=config,
        strategy=strategy,
        hierarchy=EnzoSimulation.build_initial_hierarchy(config),
    )
    machine.reset_timing()
    machine.fs.counters.reset()
    trace = trace_filesystem(machine.fs, include_meta=True)
    try:
        res = run_spmd(
            machine, lambda comm: sim.run(comm, base="dump"),
            nprocs=cell.nprocs,
        )
    finally:
        trace.detach()
    summaries = res.results
    write_s = max(s["write_time"] + s["plot_time"] for s in summaries)
    counters = machine.fs.counters
    return _record(
        cell,
        write_s=write_s,
        read_s=0.0,
        write_phases=_merge_phases(
            [_sum_phases(s["write_stats"]) for s in summaries]
        ),
        read_phases={},
        bytes_written=counters.bytes_written,
        bytes_read=0,
        fs_write_requests=counters.writes,
        fs_read_requests=0,
        fs_recoveries=counters.recoveries,
        trace=trace,
        extra={
            "ckpt_dumps": len(summaries[0]["dumps"]),
            "plot_dumps": len(summaries[0]["plot_dumps"]),
            "redshift_dumps": len(summaries[0]["redshift_dumps"]),
            "ckpt_bytes": sum(int(s["ckpt_bytes"]) for s in summaries),
            "plot_bytes": sum(int(s["plot_bytes"]) for s in summaries),
        },
    )


def _record(cell: Cell, *, trace, **kw) -> dict:
    mb = 2**20
    write_s, read_s = float(kw["write_s"]), float(kw["read_s"])
    bytes_written, bytes_read = int(kw["bytes_written"]), int(kw["bytes_read"])
    total_s = write_s + read_s
    record = {
        "figure": cell.figure,
        "machine": cell.machine,
        "problem": cell.problem,
        "strategy": cell.strategy,
        "nprocs": cell.nprocs,
        "write_s": round(write_s, 9),
        "read_s": round(read_s, 9),
        "write_bw": round(bytes_written / write_s / mb, 6)
        if write_s > 0
        else 0.0,
        "read_bw": round(bytes_read / read_s / mb, 6) if read_s > 0 else 0.0,
        "write_phases": {
            k: round(float(v), 9) for k, v in kw["write_phases"].items()
        },
        "read_phases": {
            k: round(float(v), 9) for k, v in kw["read_phases"].items()
        },
        "bytes_written": bytes_written,
        "bytes_read": bytes_read,
        "fs_write_requests": int(kw["fs_write_requests"]),
        "fs_read_requests": int(kw["fs_read_requests"]),
        "fs_recoveries": int(kw["fs_recoveries"]),
        "trace_events": len(trace),
        "trace_digest": trace.digest(),
        "file_digest": str(kw.get("file_digest", "")),
        # Derived ratios the scenario trends compare (deterministic
        # functions of the digest-pinned trace and counters above).
        "meta_ratio": round(trace.metadata_ratio(), 6),
        "read_share": round(read_s / total_s, 6) if total_s > 0 else 0.0,
        "write_requests_per_mb": round(
            int(kw["fs_write_requests"]) / (bytes_written / mb), 6
        ) if bytes_written else 0.0,
    }
    record.update(kw.get("extra") or {})
    return record


def run_cell(cell: Cell, *, hints: Hints | None = None) -> dict:
    """Execute one cell and return its canonical result record.

    ``hints`` overrides the strategy's MPI-IO tuning hints -- the hook the
    perturbation acceptance test (and ``--perturb``) uses to prove the gate
    actually trips.
    """
    if cell.figure == "fig5":
        return _run_pattern_cell(cell, hints)
    if _is_async_strategy(cell.strategy):
        return _run_overlap_cell(cell, hints)
    if _is_cadence_cell(cell):
        return _run_cadence_cell(cell, hints)
    return _run_figure_cell(cell, hints)


def run_matrix(
    cells: list[Cell] | None = None,
    *,
    perturb: dict[str, dict] | None = None,
    progress=None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
) -> dict:
    """Run ``cells`` (default: the full matrix) and assemble the payload.

    Returns a baseline-shaped dict (``schema``/``cells``/``trends``) ready
    to be compared or committed.  ``perturb`` maps cell ids to hint-field
    overrides (e.g. ``{"fig6:mpi-io:8": {"cb_buffer_size": 2 * 2**20}}``).
    ``jobs``/``cache``/``telemetry`` are threaded to the executor
    (:func:`repro.bench.executor.run_cells`); the default is the serial,
    uncached in-process path, so library callers see unchanged behaviour.
    """
    from .executor import run_cells

    cells = list(MATRIX) if cells is None else cells
    perturb = perturb or {}
    extras = {cell_id: {"hints": dict(fields)}
              for cell_id, fields in perturb.items()}
    records = run_cells("regress", cells, extras=extras, jobs=jobs,
                        cache=cache, telemetry=telemetry, progress=progress)
    trends = [
        evaluate_trend(t, records)
        for t in TRENDS
        if all(c in records for c in t.cells)
    ]
    return {"schema": BASELINE_SCHEMA, "rtol": DEFAULT_RTOL,
            "cells": records, "trends": trends}


def parse_perturbations(specs: list[str] | None) -> dict[str, dict]:
    """Parse ``--perturb CELLID:KEY=VALUE`` specs into a run_matrix map."""
    out: dict[str, dict] = {}
    for spec in specs or []:
        cell_id, sep, assign = spec.rpartition(":")
        if not sep or "=" not in assign:
            raise ValueError(
                f"bad --perturb spec {spec!r} (want FIG:STRATEGY:NPROCS:KEY=VALUE)"
            )
        key, _, value = assign.partition("=")
        if not hasattr(Hints(), key):
            raise ValueError(f"bad --perturb spec {spec!r}: unknown hint {key!r}")
        current = getattr(Hints(), key)
        if isinstance(current, bool):
            parsed: object = value.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, float):
            parsed = float(value)
        else:
            parsed = int(value)
        out.setdefault(cell_id, {})[key] = parsed
    return out


# -- comparison (shared engine in repro.bench.cellrunner) ---------------------

#: Kept as the public name of this gate's report type.
RegressionReport = GateReport


def compare(current: dict, baseline: dict, *, rtol: float | None = None
            ) -> GateReport:
    """Compare a fresh run against the committed baseline.

    Only cells present in ``current`` are compared (so ``--cell`` subsets
    check their slice of the baseline); a selected cell missing from the
    baseline is itself a violation -- the gate must never silently skip.
    Trend assertions are taken from ``current`` (they were evaluated
    against live numbers by :func:`run_matrix`).
    """
    return compare_records(
        current,
        baseline,
        exact_metrics=EXACT_METRICS,
        banded_metrics=BANDED_METRICS,
        default_rtol=DEFAULT_RTOL,
        rtol=rtol,
        digest_metric="trace_digest",
        trend_baseline="paper",
    )


def format_report(report: GateReport, *, title: str = "repro regress") -> str:
    """Readable gate outcome: a per-cell diff table naming each violation."""
    return format_gate_report(
        report,
        title=title,
        pass_detail="digests exact, bandwidth in band, all paper trends hold",
        trend_noun="paper-trend",
    )


# -- executor family ----------------------------------------------------------


def _family_run(cell: Cell, extra: dict) -> dict:
    hints = Hints(**extra["hints"]) if extra.get("hints") else None
    return run_cell(cell, hints=hints)


register_family(CellFamily(
    name="regress",
    run=_family_run,
    cell_id=lambda c: c.id,
    spec=lambda c, extra: dict(asdict(c), hints=extra.get("hints")),
    describe=lambda c: f"{c.id} ({c.machine}, {c.problem})",
))
