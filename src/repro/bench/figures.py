"""Text rendering of the paper's figures (no plotting libraries needed).

The paper's figures are grouped bar charts: I/O time per (processor count,
strategy).  :func:`render_figure` draws the same thing with ASCII bars so a
terminal benchmark run can *show* the shape, not just list numbers.
"""

from __future__ import annotations

__all__ = ["render_bars", "render_figure"]


def render_bars(
    rows: list[tuple[str, float]],
    *,
    width: int = 48,
    unit: str = "s",
) -> str:
    """Horizontal bar chart: ``rows`` are (label, value)."""
    if not rows:
        return "(no data)"
    peak = max(v for _, v in rows) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        n = int(round(width * value / peak))
        bar = "#" * max(n, 1 if value > 0 else 0)
        lines.append(f"{label.rjust(label_w)} | {bar} {value:.3f} {unit}")
    return "\n".join(lines)


def render_figure(
    title: str,
    series: dict[str, dict],
    *,
    metric: str = "write_s",
    unit: str = "s",
) -> str:
    """A paper-style grouped chart.

    ``series`` maps a strategy name to ``{x_label: value}``; groups are the
    x labels (typically processor counts), bars within a group are the
    strategies.
    """
    lines = [title, "-" * len(title)]
    xs: list = []
    for points in series.values():
        for x in points:
            if x not in xs:
                xs.append(x)
    rows: list[tuple[str, float]] = []
    for x in xs:
        for name, points in series.items():
            if x in points:
                rows.append((f"{x} {name}", points[x]))
    lines.append(render_bars(rows, unit=unit))
    return "\n".join(lines)
