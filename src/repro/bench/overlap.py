"""The compute/checkpoint-overlap bench behind ``repro overlap``.

Runs the same Enzo workload twice per machine -- a synchronous strategy
dumping inline, then its async counterpart with double-buffered
write-behind -- and reports the makespan speedup plus the effective
bandwidth each variant observed.  The committed artifact is
``BENCH_overlap.json``; the bench fails (exit 1 through the CLI) if any
pair's speedup is not strictly above 1.0, so "async stopped helping" is
a gated regression just like a paper-trend inversion.

Each (machine, sync, async, problem, nprocs, ncycles) pair is one
executor cell (:class:`OverlapPair`): it runs both sides back to back
and reduces to the canonical comparison dict, so the bench fans out and
caches through :func:`repro.bench.executor.run_cells` like every other
matrix.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from ..topology.presets import PRESETS
from .cellrunner import CellFamily, register_family
from .runners import OverlapResult, run_overlap_experiment

__all__ = [
    "OVERLAP_PATH",
    "OVERLAP_SCHEMA",
    "DEFAULT_PAIRS",
    "OverlapComparison",
    "OverlapPair",
    "run_overlap_bench",
    "run_overlap_pair",
    "check_trends",
    "save_overlap",
]

OVERLAP_PATH = "BENCH_overlap.json"
OVERLAP_SCHEMA = 1

#: (machine preset, sync strategy, async strategy, problem) -- one row per
#: machine the paper measures, the Figure-6 Origin2000 workload first.
DEFAULT_PAIRS = (
    ("origin2000", "mpi-io", "mpi-io-async", "AMR32"),
    ("chiba_city", "mpi-io", "mpi-io-async", "AMR32"),
    ("chiba_city_local", "mpi-io", "mpi-io-async", "AMR64"),
)


@dataclass(frozen=True)
class OverlapPair:
    """One executor cell: sync vs async on one machine/workload."""

    machine: str
    sync: str
    async_: str
    problem: str
    nprocs: int = 8
    ncycles: int = 3

    @property
    def id(self) -> str:
        return f"overlap:{self.machine}:{self.async_}:P{self.nprocs}"


@dataclass
class OverlapComparison:
    """Sync-vs-async outcome for one machine/workload."""

    machine: str
    problem: str
    nprocs: int
    ncycles: int
    sync: OverlapResult
    async_: OverlapResult

    @property
    def speedup(self) -> float:
        """Makespan ratio (sync / async); > 1.0 means overlap won."""
        if self.async_.makespan <= 0:
            return 0.0
        return self.sync.makespan / self.async_.makespan

    @property
    def bw_speedup(self) -> float:
        """Effective-bandwidth ratio (async / sync)."""
        sync_bw = self.sync.effective_write_bw
        if sync_bw <= 0:
            return 0.0
        return self.async_.effective_write_bw / sync_bw

    def to_dict(self) -> dict:
        def side(r: OverlapResult) -> dict:
            return {
                "strategy": r.strategy,
                "overlap": r.overlap,
                "dumps": r.dumps,
                "makespan_s": round(r.makespan, 9),
                "exposed_write_s": round(r.write_time, 9),
                "bytes_written": r.bytes_written,
                "effective_write_bw_mb_s": round(r.effective_write_bw, 6),
            }

        return {
            "machine": self.machine,
            "problem": self.problem,
            "nprocs": self.nprocs,
            "ncycles": self.ncycles,
            "sync": side(self.sync),
            "async": side(self.async_),
            "speedup": round(self.speedup, 6),
            "bw_speedup": round(self.bw_speedup, 6),
        }


def run_overlap_pair(pair: OverlapPair) -> dict:
    """Run one pair's sync and async sides; return the comparison dict."""
    from ..enzo.simulation import EnzoConfig
    from ..iostack import registry

    runs = {}
    for name, overlap in ((pair.sync, False), (pair.async_, True)):
        machine = PRESETS[pair.machine](nprocs=pair.nprocs)
        config = EnzoConfig(
            problem=pair.problem, ncycles=pair.ncycles, dump_every=1,
            overlap=overlap,
        )
        runs[name] = run_overlap_experiment(
            machine, registry.create(name), config, nprocs=pair.nprocs
        )
    return OverlapComparison(
        machine=pair.machine,
        problem=pair.problem,
        nprocs=pair.nprocs,
        ncycles=pair.ncycles,
        sync=runs[pair.sync],
        async_=runs[pair.async_],
    ).to_dict()


def run_overlap_bench(
    pairs=DEFAULT_PAIRS,
    *,
    nprocs: int = 8,
    ncycles: int = 3,
    progress=None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
) -> list[dict]:
    """Run every (machine, sync, async, problem) pair and compare.

    Returns the canonical comparison dicts in ``pairs`` order (the shape
    committed to ``BENCH_overlap.json``), regardless of how the executor
    scheduled them.
    """
    from .executor import run_cells

    cells = [
        OverlapPair(machine, sync, async_, problem,
                    nprocs=nprocs, ncycles=ncycles)
        for machine, sync, async_, problem in pairs
    ]
    records = run_cells("overlap", cells, jobs=jobs, cache=cache,
                        telemetry=telemetry, progress=progress)
    return [records[cell.id] for cell in cells]


def check_trends(runs: list[dict]) -> list[str]:
    """Paper-trend assertions over a finished bench; returns violations.

    Beyond the per-pair ``speedup > 1.0`` gate, the paper's claim that the
    overlap win is largest where storage is slowest relative to compute --
    the PVFS-over-fast-Ethernet cluster -- is pinned here, because this
    bench is the one place sync and async run the *same* workload (the
    regression matrix's async cells compare against bare single-dump
    sync cells, a different denominator).
    """
    problems = []
    by_machine = {r["machine"]: r for r in runs}
    pvfs = by_machine.get("chiba_city_local")
    if pvfs is not None and len(by_machine) > 1:
        best = max(runs, key=lambda r: r["bw_speedup"])
        if best["machine"] != "chiba_city_local":
            problems.append(
                "effective-bandwidth win should be largest on "
                "chiba_city_local (PVFS/fast-Ethernet), but "
                f"{best['machine']} wins ({best['bw_speedup']:.2f}x vs "
                f"{pvfs['bw_speedup']:.2f}x)"
            )
    return problems


def save_overlap(runs: list[dict], path: str = OVERLAP_PATH) -> dict:
    """Write the bench artifact; returns the payload written."""
    payload = {
        "schema": OVERLAP_SCHEMA,
        "runs": list(runs),
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


# -- executor family ----------------------------------------------------------


def _family_run(pair: OverlapPair, extra: dict) -> dict:
    return run_overlap_pair(pair)


register_family(CellFamily(
    name="overlap",
    run=_family_run,
    cell_id=lambda p: p.id,
    spec=lambda p, extra: asdict(p),
    describe=lambda p: (
        f"{p.machine}/{p.problem} P={p.nprocs}: {p.sync} vs {p.async_}"
    ),
))
