"""Content-addressed cell-result cache for the bench executor.

Every bench cell is a pure function of its spec (see
:mod:`repro.bench.cellrunner`), so its canonical record can be cached and
replayed byte-for-byte.  The cache key is a SHA-256 over

* the **canonical cell spec** (family name + the family's JSON spec,
  including per-cell overrides like ``--perturb`` hints),
* the **source-tree digest** -- SHA-256 over the relative path and
  content hash of every ``.py`` file under the installed ``repro``
  package, so *any* source change (simulator, strategies, presets,
  bench code itself) invalidates every entry at once, and
* the **environment fingerprint** (python and numpy versions -- float
  formatting and ufunc details can legitimately differ across them).

A hit replays the cached record with no simulation; the gate still
compares it against the committed baseline, so a warm rerun is
near-instant but never less honest than a cold one.  A corrupt or
truncated entry is treated as a miss (counted in :attr:`CellCache.corrupt`
and removed), never as a silent green.

Entries live under ``.repro-cache/`` by default (override with
``REPRO_CACHE_DIR``; disable entirely with ``REPRO_CACHE=0`` or the
CLI ``--no-cache`` flag).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from functools import lru_cache

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "DEFAULT_CACHE_DIR",
    "CellCache",
    "cache_enabled",
    "environment_fingerprint",
    "source_tree_digest",
]

CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"

ENTRY_SCHEMA = 1


def cache_enabled(env: dict | None = None) -> bool:
    """False when ``REPRO_CACHE`` is set to an off value (0/no/off/false)."""
    env = os.environ if env is None else env
    return env.get(CACHE_ENV, "1").strip().lower() not in (
        "0", "no", "off", "false",
    )


@lru_cache(maxsize=8)
def source_tree_digest(root: str | None = None) -> str:
    """SHA-256 of the repro source tree (every ``.py`` under ``root``).

    ``root`` defaults to the installed package directory, so the digest
    covers the simulator, the strategies, the presets and the bench code
    itself -- the full closure a cell record can depend on.  Cached per
    process: the tree cannot change under a running gate.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, "rb") as f:
                content = hashlib.sha256(f.read()).hexdigest()
            h.update(rel.encode())
            h.update(b"\0")
            h.update(content.encode())
            h.update(b"\0")
    return f"sha256:{h.hexdigest()}"


def environment_fingerprint() -> str:
    import numpy

    py = ".".join(str(v) for v in sys.version_info[:3])
    return f"python={py};numpy={numpy.__version__}"


class CellCache:
    """Content-addressed store of canonical cell records (JSON files).

    One file per key under ``root``; writes are atomic (temp file +
    ``os.replace``) so a crashed run can truncate at worst its in-flight
    entry, and a truncated entry reads as a miss.
    """

    def __init__(self, root: str | None = None, *,
                 tree_digest: str | None = None,
                 env_fingerprint: str | None = None):
        self.root = root or os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.tree_digest = tree_digest or source_tree_digest()
        self.env_fingerprint = env_fingerprint or environment_fingerprint()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @classmethod
    def from_env(cls, *, disabled: bool = False) -> "CellCache | None":
        """The default cache, or ``None`` when caching is switched off."""
        if disabled or not cache_enabled():
            return None
        return cls()

    def key(self, family: str, spec: dict) -> str:
        """The content address of one cell under the current tree/env."""
        canonical = json.dumps(
            {
                "family": family,
                "spec": spec,
                "tree": self.tree_digest,
                "env": self.env_fingerprint,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or ``None`` on miss/corruption.

        Anything structurally wrong -- unparseable JSON, a key mismatch
        (content moved under a renamed file), a missing record -- drops
        the entry and reports a miss, so the caller always falls back to
        a live run.
        """
        path = self._path(key)
        try:
            with open(path) as f:
                entry = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or entry.get("key") != key
            or not isinstance(entry.get("record"), dict)
        ):
            self.corrupt += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return entry["record"]

    def put(self, key: str, cell_id: str, record: dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "cell": cell_id,
            "record": record,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, indent=1, sort_keys=True)
                f.write("\n")
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
