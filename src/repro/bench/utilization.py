"""Device-utilisation reporting for a simulated machine.

After an experiment, every FCFS timeline in the machine knows how long it
was busy and how many requests it served.  This module turns that into the
bottleneck analysis an I/O study lives on: which device saturated, which
sat idle — e.g. the single P0 I/O channel pegged at ~100% under HDF4 while
fifteen disks idle.
"""

from __future__ import annotations

from ..core.report import format_table
from ..pfs.localfs import LocalDiskFS
from ..pfs.striped import StripedServerFS
from ..topology.machine import Machine

__all__ = ["device_utilization", "format_utilization_report"]


def _row(name: str, timeline, span: float) -> list:
    frac = timeline.busy_time / span if span > 0 else 0.0
    return [name, timeline.requests, f"{timeline.busy_time:.3f}", f"{frac:5.1%}"]


def device_utilization(machine: Machine, span: float) -> list[list]:
    """Rows of (device, requests, busy seconds, utilisation) over ``span``."""
    rows: list[list] = []
    net = machine.network
    if net.fabric_bandwidth != float("inf"):
        rows.append(_row("net.fabric", net.fabric, span))
    busiest_out = max(net.egress, key=lambda t: t.busy_time)
    busiest_in = max(net.ingress, key=lambda t: t.busy_time)
    rows.append(_row(f"net.egress[{net.egress.index(busiest_out)}]",
                     busiest_out, span))
    rows.append(_row(f"net.ingress[{net.ingress.index(busiest_in)}]",
                     busiest_in, span))
    fs = machine.fs
    if isinstance(fs, StripedServerFS):
        for srv in fs.servers:
            rows.append(_row(f"{fs.name}.disk[{srv.index}]", srv.disk, span))
        if fs.write_token_time:
            rows.append(_row(f"{fs.name}.token-mgr", fs.token_manager, span))
        for node, q in sorted(fs._node_queues.items()):
            rows.append(_row(f"{fs.name}.ioq[{node}]", q, span))
        for node, ch in sorted(fs._client_channels.items()):
            rows.append(_row(f"{fs.name}.chan[{node}]", ch, span))
    elif isinstance(fs, LocalDiskFS):
        for i, disk in enumerate(fs.disks):
            rows.append(_row(f"{fs.name}.disk[{i}]", disk, span))
    return rows


def format_utilization_report(
    machine: Machine, span: float, *, top: int | None = None
) -> str:
    """Text report, busiest devices first."""
    rows = device_utilization(machine, span)
    rows.sort(key=lambda r: -float(r[2]))
    if top is not None:
        rows = rows[:top]
    title = f"device utilisation over {span:.3f} s ({machine.name})"
    return title + "\n" + format_table(
        ["device", "requests", "busy [s]", "util"], rows
    )
