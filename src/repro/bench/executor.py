"""Parallel bench executor: fan cells across a process pool, merge
deterministically, replay cache hits.

:func:`run_cells` is the one engine every bench matrix (regress, scale,
overlap, insights) now runs through:

1. **cache probe** -- with a :class:`~repro.bench.cellcache.CellCache`
   attached, each cell's content address (canonical spec + source-tree
   digest + python/numpy versions) is looked up first; a hit replays the
   cached canonical record with no simulation;
2. **fan-out** -- misses run either inline (``jobs == 1``, the legacy
   serial path, no subprocesses involved) or across a ``spawn``-based
   process pool.  Workers receive ``(family_name, cell, extra)``, resolve
   the family by name (:func:`~repro.bench.cellrunner.get_family`) and
   run the cell against a machine they build themselves -- nothing is
   shared, so cells cannot interact;
3. **deterministic merge** -- records are keyed and ordered by the
   caller's cell order regardless of completion order, and each record is
   a pure function of its spec (simulated clocks + golden digests), so
   ``jobs=N`` output is byte-identical to ``jobs=1`` output.  The test
   suite asserts this equality and the regress gate's golden digests
   would expose any violation on real cells.

Per-cell telemetry (wall µs, cache hit/miss, worker id, queue wait) is
recorded into a :class:`~repro.bench.timings.Telemetry` when one is
passed, feeding the ``BENCH_timings.json`` artifact.

``spawn`` (not ``fork``) is used deliberately: the simulator runs many
threads per SPMD job, and forking a previously multi-threaded interpreter
is unreliable; ``python -m repro``'s entry point is ``__main__``-guarded,
so spawned workers import the package cleanly.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from .cellcache import CellCache
from .cellrunner import get_family
from .timings import Telemetry

__all__ = [
    "JOBS_ENV",
    "default_jobs",
    "resolve_jobs",
    "run_cells",
]

JOBS_ENV = "REPRO_JOBS"


def default_jobs(n_cells: int) -> int:
    """``min(os.cpu_count(), n_cells)``, at least 1."""
    return max(1, min(os.cpu_count() or 1, max(n_cells, 1)))


def resolve_jobs(requested: int | None, n_cells: int,
                 env: dict | None = None) -> int:
    """The worker count for a run of ``n_cells`` cells.

    ``requested`` is the ``--jobs`` flag (``None`` = not given, fall back
    to the ``REPRO_JOBS`` environment override, then to
    :func:`default_jobs`).  Zero or negative values -- from the flag or
    the environment -- raise :class:`ValueError`; the CLI maps that to
    exit 2.
    """
    env = os.environ if env is None else env
    if requested is None:
        raw = env.get(JOBS_ENV, "").strip()
        if not raw:
            return default_jobs(n_cells)
        try:
            requested = int(raw)
        except ValueError:
            raise ValueError(
                f"bad {JOBS_ENV} value {raw!r} (want a positive integer)"
            )
        if requested < 1:
            raise ValueError(
                f"bad {JOBS_ENV} value {requested} (want a positive integer)"
            )
        return min(requested, max(n_cells, 1))
    if requested < 1:
        raise ValueError(
            f"--jobs must be a positive integer (got {requested}); "
            "use --jobs 1 for the serial path"
        )
    return requested


def _execute(family_name: str, cell, extra: dict):
    """Worker entry point: run one cell, stamp host timings.

    Top-level so it pickles by reference; the family is re-resolved by
    name inside the worker process.
    """
    start = time.monotonic()
    family = get_family(family_name)
    record = family.run(cell, extra)
    return record, start, time.monotonic(), os.getpid()


def run_cells(
    family_name: str,
    cells: list,
    *,
    extras: dict | None = None,
    jobs: int = 1,
    cache: CellCache | None = None,
    telemetry: Telemetry | None = None,
    progress=None,
) -> dict[str, dict]:
    """Run every cell and return ``{cell_id: record}`` in caller order.

    ``extras`` maps cell ids to per-cell override dicts (part of the
    cache identity).  ``cache=None`` disables caching; ``jobs=1`` is the
    in-process serial path.  Worker failures propagate: a cell that
    raises fails the whole run loudly, never a partial silent result.
    """
    family = get_family(family_name)
    extras = extras or {}
    order = [(family.cell_id(cell), cell) for cell in cells]
    records: dict[str, dict] = {}
    pending: list[tuple[str, object, dict, str | None]] = []

    def note(cell_id, *, wall_us, cache_state, worker, queue_wait_us):
        if telemetry is not None:
            telemetry.add(cell_id, wall_us=wall_us, cache=cache_state,
                          worker=worker, queue_wait_us=queue_wait_us)

    for cell_id, cell in order:
        extra = extras.get(cell_id, {})
        if cache is not None:
            key = cache.key(family_name, family.spec(cell, extra))
            t0 = time.monotonic()
            record = cache.get(key)
            if record is not None:
                records[cell_id] = record
                note(cell_id,
                     wall_us=round((time.monotonic() - t0) * 1e6),
                     cache_state="hit", worker=-1, queue_wait_us=0)
                if progress:
                    progress(f"cached {family.describe(cell)}")
                continue
            pending.append((cell_id, cell, extra, key))
        else:
            pending.append((cell_id, cell, extra, None))

    cache_state = "off" if cache is None else "miss"
    effective = min(jobs, len(pending)) if pending else 1
    if effective <= 1:
        for cell_id, cell, extra, key in pending:
            if progress:
                progress(f"running {family.describe(cell)}")
            t0 = time.monotonic()
            record = family.run(cell, extra)
            wall_us = round((time.monotonic() - t0) * 1e6)
            records[cell_id] = record
            if key is not None:
                cache.put(key, cell_id, record)
            note(cell_id, wall_us=wall_us, cache_state=cache_state,
                 worker=0, queue_wait_us=0)
    else:
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=effective, mp_context=ctx) as pool:
            futures = {}
            for cell_id, cell, extra, key in pending:
                fut = pool.submit(_execute, family_name, cell, extra)
                futures[fut] = (cell_id, cell, key, time.monotonic())
            worker_ids: dict[int, int] = {}
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    cell_id, cell, key, submitted = futures[fut]
                    record, start, end, pid = fut.result()
                    records[cell_id] = record
                    if key is not None:
                        cache.put(key, cell_id, record)
                    worker = worker_ids.setdefault(pid, len(worker_ids))
                    note(cell_id,
                         wall_us=round((end - start) * 1e6),
                         cache_state=cache_state, worker=worker,
                         queue_wait_us=max(0, round((start - submitted) * 1e6)))
                    if progress:
                        progress(f"finished {family.describe(cell)}")

    return {cell_id: records[cell_id] for cell_id, _ in order}
