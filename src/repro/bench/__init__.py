"""Benchmark harness: workload builders, experiment runners, and the
paper-figure regression gate (``repro.bench.regression``)."""

from .baselines import (
    DEFAULT_RTOL,
    MATRIX,
    TRENDS,
    Cell,
    Trend,
    load_baseline,
    save_baseline,
    select_cells,
)
from .figures import render_bars, render_figure
from .regression import (
    RegressionReport,
    compare,
    format_report,
    parse_perturbations,
    run_cell,
    run_matrix,
)
from .runners import (
    ExperimentResult,
    run_checkpoint_experiment,
    run_traced_experiment,
)
from .scale import (
    SCALE_MATRIX,
    SCALE_TRENDS,
    ScaleCell,
    compare_scale,
    load_scale_baseline,
    run_scale_cell,
    run_scale_matrix,
    save_scale_baseline,
    select_scale_cells,
)
from .utilization import device_utilization, format_utilization_report
from .workloads import (
    build_initial_workload,
    build_scale_workload,
    build_workload,
    workload_summary,
)

__all__ = [
    "ExperimentResult",
    "run_checkpoint_experiment",
    "run_traced_experiment",
    "build_workload",
    "build_initial_workload",
    "workload_summary",
    "render_bars",
    "render_figure",
    "device_utilization",
    "format_utilization_report",
    # regression gate
    "Cell",
    "Trend",
    "MATRIX",
    "TRENDS",
    "DEFAULT_RTOL",
    "RegressionReport",
    "run_cell",
    "run_matrix",
    "compare",
    "format_report",
    "parse_perturbations",
    "select_cells",
    "load_baseline",
    "save_baseline",
    # weak-scaling gate
    "ScaleCell",
    "SCALE_MATRIX",
    "SCALE_TRENDS",
    "build_scale_workload",
    "run_scale_cell",
    "run_scale_matrix",
    "compare_scale",
    "select_scale_cells",
    "load_scale_baseline",
    "save_scale_baseline",
]
