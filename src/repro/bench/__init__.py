"""Benchmark harness: workload builders and experiment runners."""

from .figures import render_bars, render_figure
from .runners import (
    ExperimentResult,
    run_checkpoint_experiment,
    run_traced_experiment,
)
from .utilization import device_utilization, format_utilization_report
from .workloads import build_initial_workload, build_workload, workload_summary

__all__ = [
    "ExperimentResult",
    "run_checkpoint_experiment",
    "run_traced_experiment",
    "build_workload",
    "build_initial_workload",
    "workload_summary",
    "render_bars",
    "render_figure",
    "device_utilization",
    "format_utilization_report",
]
