"""Benchmark harness: workload builders, experiment runners, the
paper-figure regression gate (``repro.bench.regression``), and the
parallel cell executor with its content-addressed cache
(``repro.bench.executor`` / ``repro.bench.cellcache``)."""

from .baselines import (
    DEFAULT_RTOL,
    MATRIX,
    TRENDS,
    Cell,
    Trend,
    load_baseline,
    save_baseline,
    select_cells,
)
from .cellcache import CellCache
from .cellrunner import GateReport, get_family
from .executor import default_jobs, resolve_jobs, run_cells
from .figures import render_bars, render_figure
from .regression import (
    RegressionReport,
    compare,
    format_report,
    parse_perturbations,
    run_cell,
    run_matrix,
)
from .runners import (
    ExperimentResult,
    run_checkpoint_experiment,
    run_traced_experiment,
)
from .scale import (
    SCALE_MATRIX,
    SCALE_TRENDS,
    ScaleCell,
    compare_scale,
    load_scale_baseline,
    run_scale_cell,
    run_scale_matrix,
    save_scale_baseline,
    select_scale_cells,
)
from .timings import Telemetry, format_timings, load_timings, save_timings
from .utilization import device_utilization, format_utilization_report
from .workloads import (
    build_initial_workload,
    build_scale_workload,
    build_workload,
    workload_summary,
)

__all__ = [
    "ExperimentResult",
    "run_checkpoint_experiment",
    "run_traced_experiment",
    "build_workload",
    "build_initial_workload",
    "workload_summary",
    "render_bars",
    "render_figure",
    "device_utilization",
    "format_utilization_report",
    # regression gate
    "Cell",
    "Trend",
    "MATRIX",
    "TRENDS",
    "DEFAULT_RTOL",
    "RegressionReport",
    "run_cell",
    "run_matrix",
    "compare",
    "format_report",
    "parse_perturbations",
    "select_cells",
    "load_baseline",
    "save_baseline",
    # weak-scaling gate
    "ScaleCell",
    "SCALE_MATRIX",
    "SCALE_TRENDS",
    "build_scale_workload",
    "run_scale_cell",
    "run_scale_matrix",
    "compare_scale",
    "select_scale_cells",
    "load_scale_baseline",
    "save_scale_baseline",
    # parallel executor, cache, telemetry
    "CellCache",
    "GateReport",
    "Telemetry",
    "default_jobs",
    "format_timings",
    "get_family",
    "load_timings",
    "resolve_jobs",
    "run_cells",
    "save_timings",
]
