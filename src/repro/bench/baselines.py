"""The paper-figure regression matrix: cells, trend assertions, baselines.

This module is the declarative half of the regression gate
(:mod:`repro.bench.regression` is the engine).  It pins down

* **cells** -- the (figure, machine preset, problem size, strategy, nprocs)
  grid behind Figures 5-10 of the paper, sized so the full matrix runs in
  well under a minute while every qualitative result the paper reports is
  present in the model (per-figure problem sizes are chosen where the
  mechanism shows: the GPFS inversions need the communication-dominated
  AMR16, the local-disk write scaling needs AMR64);

* **trend assertions** -- the paper's qualitative results transcribed as
  machine-checkable comparisons between cells ("MPI-IO beats HDF4 write
  bandwidth on XFS at >= 4 procs", "HDF5 <= MPI-IO everywhere", "GPFS
  16-proc read inversion", ...).  A perf PR that inverts a paper result
  trips these even if it updates the bandwidth baseline;

* **baseline I/O** -- loading/saving the committed ``BENCH_figures.json``
  artifact that every run is compared against.

The committed baseline is the first point of the repo's perf trajectory:
``python -m repro regress --update-baseline`` refreshes it (review the
diff!), and plain ``python -m repro regress`` is the blocking gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = [
    "Cell",
    "Trend",
    "MATRIX",
    "TRENDS",
    "BASELINE_PATH",
    "BASELINE_SCHEMA",
    "DEFAULT_RTOL",
    "cell_by_id",
    "select_cells",
    "load_baseline",
    "save_baseline",
]

#: Default committed baseline artifact (repo root, relative to the CWD the
#: gate runs from -- scripts/verify.sh and CI both run from the repo root).
BASELINE_PATH = "BENCH_figures.json"
BASELINE_SCHEMA = 1

#: Default relative tolerance band for bandwidth comparisons.  The simulator
#: is deterministic, so the band exists to classify *intentional* changes:
#: within the band a refactor is noise, outside it the baseline must be
#: consciously updated (and the paper trends still have to hold).
DEFAULT_RTOL = 0.05


@dataclass(frozen=True)
class Cell:
    """One cell of the figure grid: a single experiment to run and pin."""

    figure: str
    strategy: str  # "hdf4" | "mpi-io" | "hdf5" | fig5: "two-phase"/"independent"
    nprocs: int
    problem: str  # scenario name ("-" for the fig5 access-pattern cells)
    machine: str  # topology preset name
    do_read: bool = True
    read_op: str = "initial"  # "initial" | "restart" (the read path measured)

    @property
    def id(self) -> str:
        return f"{self.figure}:{self.strategy}:{self.nprocs}"


@dataclass(frozen=True)
class Trend:
    """A paper result as a comparison between two cells' metrics.

    Asserts ``metric(left) <relation> metric(right)`` over the *current*
    run's results -- trends are properties of the model, not of the
    baseline, so they hold (or fail) regardless of tolerance bands.

    With ``left_div``/``right_div`` set, each side is the *ratio* of the
    metric between two cells ("the async speedup on PVFS beats the async
    speedup on XFS"), which pins relative wins without pinning absolute
    bandwidths.

    ``rfactor`` scales the right-hand side before comparing ("scda keeps
    >= 70% of the raw format's bandwidth"); the ``eq`` relation compares
    verbatim and is how string metrics -- the scda partition-invariance
    file digests -- are pinned.

    ``right_metric`` reads a *different* metric on the right-hand cell
    ("plot bytes stay below checkpoint bytes on the same run"), which is
    how the scenario cadence cells compare their two output streams
    without needing a second cell.
    """

    id: str
    description: str
    metric: str  # key of the per-cell result dict (write_bw, read_s, ...)
    left: str  # cell id
    relation: str  # "gt" | "ge" | "lt" | "le" | "eq"
    right: str  # cell id
    left_div: str | None = None  # cell id dividing the left metric
    right_div: str | None = None  # cell id dividing the right metric
    rfactor: float = 1.0  # right-hand scale factor (numeric metrics only)
    right_metric: str | None = None  # metric read on the right cell (default: metric)

    @property
    def cells(self) -> tuple[str, ...]:
        """Every cell id this trend reads (for availability checks)."""
        return tuple(
            c for c in (self.left, self.right, self.left_div, self.right_div)
            if c is not None
        )

    def holds(self, lhs, rhs) -> bool:
        if self.relation == "eq":
            return lhs == rhs
        return {
            "gt": lhs > rhs,
            "ge": lhs >= rhs,
            "lt": lhs < rhs,
            "le": lhs <= rhs,
        }[self.relation]


def _grid(figure, machine, problem, strategies, procs, do_read=True):
    return [
        Cell(figure, s, p, problem, machine, do_read)
        for p in procs
        for s in strategies
    ]


#: The full Figure 5-10 grid.
MATRIX: tuple[Cell, ...] = tuple(
    # Figure 5: the request-pattern contrast behind everything else -- the
    # same strided (1, Block, 1) write issued through two-phase collective
    # I/O vs naive independent writes (no data sieving, so the raw pattern
    # reaches the file system).
    [
        Cell("fig5", "two-phase", 8, "-", "origin2000", do_read=False),
        Cell("fig5", "independent", 8, "-", "origin2000", do_read=False),
    ]
    # Figure 6: Origin2000/XFS -- MPI-IO beats sequential HDF4 both ways.
    + _grid("fig6", "origin2000", "AMR32", ["hdf4", "mpi-io"], [2, 4, 8, 16])
    # Figure 7: IBM SP/GPFS -- MPI-IO *loses* (token thrash, SMP queues);
    # AMR16 keeps the run communication-dominated, where the paper's
    # 16-processor read inversion also appears.
    + _grid("fig7", "ibm_sp2", "AMR16", ["hdf4", "mpi-io"], [16, 32])
    # Figure 8: Chiba City/PVFS over fast Ethernet -- MPI-IO reads win via
    # data sieving + server caching.
    + _grid("fig8", "chiba_city", "AMR32", ["hdf4", "mpi-io"], [8])
    # Figure 9: node-local disks -- MPI-IO scales with P, HDF4 cannot;
    # AMR64 is where the write scaling is decisive.
    + _grid("fig9", "chiba_city_local", "AMR64", ["hdf4", "mpi-io"], [2, 4, 8])
    # Figure 10: parallel HDF5 trails MPI-IO at every processor count.
    # The hdf5-aligned cells pin the paper's Section 5 remedy (metadata
    # aggregation + aligned data) alongside the strategies it improves on.
    + _grid(
        "fig10", "origin2000", "AMR32", ["mpi-io", "hdf5", "hdf5-aligned"],
        [4, 8, 16],
        do_read=False,
    )
    # Asynchronous variants (repro.aio): measured under compute/checkpoint
    # overlap (the Enzo driver with double-buffered write-behind), so
    # write_bw is the *effective* bandwidth the application observes.
    # One async cell next to each machine's synchronous anchor.
    + _grid("fig6", "origin2000", "AMR32", ["mpi-io-async"], [4, 8],
            do_read=False)
    + _grid("fig8", "chiba_city", "AMR32", ["mpi-io-async"], [8],
            do_read=False)
    + _grid("fig9", "chiba_city_local", "AMR64", ["mpi-io-async"], [8],
            do_read=False)
    + _grid("fig10", "origin2000", "AMR32",
            ["hdf5-async", "hdf5-aligned-async"], [8], do_read=False)
    # Lustre what-if (post-paper): stripe-tuned collective I/O against the
    # 4-wide volume default, with the hdf4 file-per-grid layout alongside
    # so the single-MDS metadata explosion is pinned too.
    + _grid("lustre", "lustre", "AMR32",
            ["hdf4", "mpi-io", "mpi-io-lustre"], [4, 8])
    # scda serial-equivalent format: the committed file must be
    # byte-identical for every P (pinned by file_digest eq trends below),
    # including P=1, the serial reference.
    + _grid("scda", "origin2000", "AMR32", ["mpi-io-scda"], [1, 2, 4, 8])
    + _grid("scda", "origin2000", "AMR32", ["mpi-io-scda-async"], [8],
            do_read=False)
    # Parameter-file scenarios (repro.scenarios): the gated workloads that
    # exercise the ingestion layer end to end.  foggie-nested's deep zoom
    # hierarchy inflates the metadata share of the file-per-grid layout;
    # nyx-plotfile runs the two-stream Enzo driver (plot cadence at twice
    # the checkpoint cadence, plus a redshift-triggered dump); and
    # flashx-particles measures the particle-heavy *restart* read.
    + _grid("foggie-nested", "origin2000", "foggie-nested",
            ["hdf4", "mpi-io"], [4])
    + [Cell("nyx-plotfile", "mpi-io", 8, "nyx-plotfile", "origin2000",
            do_read=False)]
    + [Cell("flashx-particles", "mpi-io", 8, "flashx-particles",
            "origin2000", read_op="restart")]
)


def _check_matrix_strategies() -> None:
    """Every AMR cell's strategy must be a registered composition.

    The fig5 access-pattern cells use synthetic pattern names
    ("two-phase"/"independent") that are not checkpoint strategies and are
    run by a dedicated driver, so they are exempt.
    """
    from ..iostack import registry

    known = set(registry.names())
    unknown = sorted(
        {c.strategy for c in MATRIX if c.figure != "fig5"} - known
    )
    if unknown:
        raise ValueError(
            f"MATRIX references unregistered strategies: {', '.join(unknown)}"
        )


_check_matrix_strategies()


def _t(id, description, metric, left, relation, right):
    return Trend(id, description, metric, left, relation, right)


#: The paper's qualitative results (Figures 5-10), machine-checkable.
TRENDS: tuple[Trend, ...] = tuple(
    [
        _t(
            "fig5-collective-fewer-requests",
            "two-phase collective I/O turns many small interleaved writes "
            "into few large sequential ones (Fig 5)",
            "fs_write_requests",
            "fig5:two-phase:8", "lt", "fig5:independent:8",
        ),
        _t(
            "fig5-collective-faster",
            "the collective request pattern is also faster on XFS (Fig 5)",
            "write_s",
            "fig5:two-phase:8", "lt", "fig5:independent:8",
        ),
    ]
    + [
        _t(
            f"fig6-write-bw-P{p}",
            f"MPI-IO write bandwidth beats HDF4 on Origin2000/XFS at P={p} "
            "(Fig 6)",
            "write_bw", f"fig6:mpi-io:{p}", "gt", f"fig6:hdf4:{p}",
        )
        for p in (4, 8, 16)
    ]
    + [
        _t(
            f"fig6-read-bw-P{p}",
            f"MPI-IO read beats the serial HDF4 read path at P={p} (Fig 6)",
            "read_bw", f"fig6:mpi-io:{p}", "gt", f"fig6:hdf4:{p}",
        )
        for p in (2, 4, 8, 16)
    ]
    + [
        _t(
            f"fig7-write-inversion-P{p}",
            f"on SP/GPFS the MPI-IO write is *slower* than HDF4 at P={p} "
            "(token thrash + SMP I/O queues, Fig 7)",
            "write_s", f"fig7:mpi-io:{p}", "gt", f"fig7:hdf4:{p}",
        )
        for p in (16, 32)
    ]
    + [
        _t(
            "fig7-read-inversion-P16",
            "the GPFS 16-processor read inversion: MPI-IO reads lose to "
            "HDF4 at P=16 (Fig 7)",
            "read_s", "fig7:mpi-io:16", "gt", "fig7:hdf4:16",
        ),
        _t(
            "fig8-read-sieving-P8",
            "on PVFS/fast-Ethernet the MPI-IO read wins via data sieving "
            "and server caching (Fig 8)",
            "read_s", "fig8:mpi-io:8", "lt", "fig8:hdf4:8",
        ),
    ]
    + [
        _t(
            f"fig9-write-P{p}",
            f"node-local disks: MPI-IO write beats HDF4 at P={p} (Fig 9)",
            "write_s", f"fig9:mpi-io:{p}", "lt", f"fig9:hdf4:{p}",
        )
        for p in (2, 4, 8)
    ]
    + [
        _t(
            "fig9-write-scales",
            "node-local MPI-IO write time falls as processors grow (Fig 9)",
            "write_s", "fig9:mpi-io:8", "lt", "fig9:mpi-io:2",
        ),
        _t(
            "fig9-read-P8",
            "node-local MPI-IO read beats the HDF4 redistribution read "
            "at P=8 (Fig 9)",
            "read_s", "fig9:mpi-io:8", "lt", "fig9:hdf4:8",
        ),
    ]
    + [
        _t(
            f"fig10-hdf5-bw-P{p}",
            f"parallel HDF5 write bandwidth trails MPI-IO at P={p} "
            "(per-dataset overheads, Fig 10)",
            "write_bw", f"fig10:hdf5:{p}", "le", f"fig10:mpi-io:{p}",
        )
        for p in (4, 8, 16)
    ]
    + [
        _t(
            f"fig10-aligned-bw-P{p}",
            "metadata aggregation + alignment recovers HDF5 write bandwidth "
            f"at P={p} (paper Section 5 remedy)",
            "write_bw", f"fig10:hdf5-aligned:{p}", "ge", f"fig10:hdf5:{p}",
        )
        for p in (4, 8, 16)
    ]
    + [
        _t(
            "fig10-hdf5-flat",
            "HDF5 write time does not improve with processors (its "
            "per-dataset costs are serial, Fig 10)",
            "write_s", "fig10:hdf5:16", "ge", "fig10:hdf5:4",
        ),
    ]
    # -- asynchronous I/O (repro.aio): overlap beats synchronous dumps on
    # every machine, and the relative win is largest on the Chiba City
    # PVFS/fast-Ethernet cluster, where raw bandwidth is scarcest.
    + [
        _t(
            f"async-effective-bw-{sync_cell.replace(':', '-')}",
            "background-flush write-behind beats the synchronous dump's "
            f"bandwidth ({sync_cell})",
            "write_bw", async_cell, "ge", sync_cell,
        )
        for async_cell, sync_cell in (
            ("fig6:mpi-io-async:4", "fig6:mpi-io:4"),
            ("fig6:mpi-io-async:8", "fig6:mpi-io:8"),
            ("fig8:mpi-io-async:8", "fig8:mpi-io:8"),
            ("fig9:mpi-io-async:8", "fig9:mpi-io:8"),
            ("fig10:hdf5-async:8", "fig10:hdf5:8"),
            ("fig10:hdf5-aligned-async:8", "fig10:hdf5-aligned:8"),
        )
    ]
    # -- Lustre (post-paper): per-file stripe layouts are a real knob, and
    # the single MDS makes the file-per-grid layout strictly worse than it
    # is on file systems without a central namespace server.
    + [
        _t(
            f"lustre-stripe-tuned-P{p}",
            "widening the checkpoint's stripes over all 16 OSTs "
            "(striping_factor/lfs setstripe) beats the 4-wide volume "
            f"default at P={p}",
            "write_bw", f"lustre:mpi-io-lustre:{p}", "ge",
            f"lustre:mpi-io:{p}",
        )
        for p in (4, 8)
    ]
    + [
        Trend(
            id="lustre-mds-explosion",
            description="the file-per-grid restart read pays Lustre's "
            "single MDS an open+namespace-scan cost per grid file: hdf4's "
            "read slowdown relative to one shared file is worse on Lustre "
            "than the same ratio on Figure 9's node-local disks, which "
            "have no central namespace server",
            metric="read_s",
            left="lustre:hdf4:8", left_div="lustre:mpi-io:8",
            relation="gt",
            right="fig9:hdf4:8", right_div="fig9:mpi-io:8",
        ),
    ]
    # -- scda: serial equivalence means the committed file bytes are a pure
    # function of the hierarchy, so every P produces the P=1 digest; the
    # fixed-width headers and block padding must stay cheap next to the raw
    # shared-file format on the same machine/problem/P.
    + [
        Trend(
            id=f"scda-partition-invariant-P{p}",
            description=f"the committed scda checkpoint at P={p} is "
            "byte-identical to the serial P=1 file (partition invariance)",
            metric="file_digest",
            left=f"scda:mpi-io-scda:{p}", relation="eq",
            right="scda:mpi-io-scda:1",
        )
        for p in (2, 4, 8)
    ]
    + [
        Trend(
            id="scda-overhead-bounded",
            description="scda's headers + block padding keep at least 70% "
            "of the raw shared-file write bandwidth (Origin2000, AMR32, "
            "P=8)",
            metric="write_bw",
            left="scda:mpi-io-scda:8", relation="ge",
            right="fig6:mpi-io:8", rfactor=0.7,
        ),
    ]
    + [
        Trend(
            id="async-win-grows-with-procs",
            description="the async win on the Origin2000 grows with process "
            "count: Figure 6's synchronous bandwidth decays as P rises, so "
            "there is more stall for the background flush to hide at P=8 "
            "than at P=4 (the largest-win-on-PVFS claim is pinned by "
            "``repro overlap``, where both sides run the same workload)",
            metric="write_bw",
            left="fig6:mpi-io-async:8", left_div="fig6:mpi-io:8",
            relation="ge",
            right="fig6:mpi-io-async:4", right_div="fig6:mpi-io:4",
        ),
    ]
    # -- parameter-file scenarios: the qualitative claims each gated
    # workload was added to pin.
    + [
        Trend(
            id="foggie-file-per-grid-requests",
            description="on the FOGGIE-style deep zoom hierarchy (nested "
            "initial grids + must-refine regions feeding many small deep "
            "grids) the file-per-grid layout issues more file-system "
            "write requests per megabyte than the shared-file collective "
            "layout on the same workload",
            metric="write_requests_per_mb",
            left="foggie-nested:hdf4:4", relation="gt",
            right="foggie-nested:mpi-io:4",
        ),
        Trend(
            id="foggie-shared-file-dodges-namespace",
            description="the shared-file strategy's metadata share is "
            "insensitive to the deep nesting that inflates hdf4's: on the "
            "same foggie-nested workload mpi-io keeps a lower metadata "
            "ratio than the file-per-grid layout",
            metric="meta_ratio",
            left="foggie-nested:mpi-io:4", relation="lt",
            right="foggie-nested:hdf4:4",
        ),
        Trend(
            id="nyx-plot-cadence-doubles-dumps",
            description="the Nyx parameter file's plot_int=1 / check_int=2 "
            "cadence emits twice as many plot files as checkpoints over "
            "the run",
            metric="plot_dumps",
            left="nyx-plotfile:mpi-io:8", relation="ge",
            right="nyx-plotfile:mpi-io:8", right_metric="ckpt_dumps",
            rfactor=2.0,
        ),
        Trend(
            id="nyx-plot-payload-lighter",
            description="plot files carry a field subset and no particles, "
            "so the whole plot stream moves fewer bytes than the "
            "checkpoint stream of the same run despite dumping twice as "
            "often",
            metric="plot_bytes",
            left="nyx-plotfile:mpi-io:8", relation="lt",
            right="nyx-plotfile:mpi-io:8", right_metric="ckpt_bytes",
        ),
        Trend(
            id="flashx-particles-read-share",
            description="the particle-heavy restart (8x the particles per "
            "cell, whole-subgrid round-robin reads) shifts the run's time "
            "balance toward the read phase compared to the flat AMR32 "
            "initial-read cell on the same machine",
            metric="read_share",
            left="flashx-particles:mpi-io:8", relation="gt",
            right="fig6:mpi-io:8",
        ),
    ]
)


def cell_by_id(cell_id: str) -> Cell:
    for c in MATRIX:
        if c.id == cell_id:
            return c
    raise KeyError(cell_id)


def _component_matcher(part: str):
    """Exact match, or :mod:`fnmatch` when the component has wildcards."""
    if any(ch in part for ch in "*?["):
        import fnmatch

        return lambda value: fnmatch.fnmatchcase(value, part)
    return lambda value: value == part


def select_cells(specs: list[str] | None) -> list[Cell]:
    """Resolve ``--cell`` specs (``FIG[:STRATEGY[:NPROCS]]``) to cells.

    No specs selects the whole matrix.  Each component may be a glob
    pattern (``fig6:*-async``, ``fig*:mpi-io:8``); components without
    wildcards match exactly, and a wildcard-free NPROCS must still be an
    integer.  A spec must match at least one cell or :class:`ValueError`
    is raised (a typo must not silently pass the gate by checking
    nothing).
    """
    if not specs:
        return list(MATRIX)
    picked: dict[str, Cell] = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) > 3 or not parts[0]:
            raise ValueError(f"bad --cell spec {spec!r} (want FIG[:STRATEGY[:NPROCS]])")
        fig = _component_matcher(parts[0])
        strat = (
            _component_matcher(parts[1])
            if len(parts) > 1 and parts[1]
            else None
        )
        procs = None
        if len(parts) > 2 and parts[2]:
            if any(ch in parts[2] for ch in "*?["):
                procs = _component_matcher(parts[2])
            else:
                try:
                    nprocs = int(parts[2])
                except ValueError:
                    raise ValueError(
                        f"bad --cell spec {spec!r}: NPROCS must be an integer"
                    )
                procs = lambda value, n=nprocs: int(value) == n
        matched = [
            c
            for c in MATRIX
            if fig(c.figure)
            and (strat is None or strat(c.strategy))
            and (procs is None or procs(str(c.nprocs)))
        ]
        if not matched:
            known = sorted({c.figure for c in MATRIX})
            raise ValueError(
                f"--cell {spec!r} matches no cell (figures: {', '.join(known)})"
            )
        for c in matched:
            picked[c.id] = c
    return list(picked.values())


def load_baseline(path: str = BASELINE_PATH) -> dict:
    """Load and structurally validate a committed baseline file."""
    with open(path) as f:
        payload = json.load(f)
    if not isinstance(payload, dict) or "cells" not in payload:
        raise ValueError(f"{path} is not a regression baseline (no 'cells')")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} has baseline schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}"
        )
    return payload


def save_baseline(payload: dict, path: str = BASELINE_PATH) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
