"""Per-cell executor telemetry and the ``BENCH_timings.json`` artifact.

Every bench run through :func:`repro.bench.executor.run_cells` records,
per cell: host wall time (µs), cache outcome (hit/miss/off), the worker
that ran it and how long it waited in the queue.  The families merge
their sections into one ``BENCH_timings.json`` so a full verify flow
leaves a single artifact describing where the wall-clock went;
``repro bench timings`` prints it (``--top N`` for the slowest cells).

Telemetry measures the *host*, not the simulated machine -- it is never
compared against a baseline and is deliberately kept out of the cell
records themselves so those stay byte-identical across serial, parallel
and cache-replay execution.
"""

from __future__ import annotations

import json
import os
import tempfile

from ..core.report import format_table

__all__ = [
    "TIMINGS_PATH",
    "TIMINGS_SCHEMA",
    "Telemetry",
    "format_timings",
    "load_timings",
    "save_timings",
]

TIMINGS_PATH = "BENCH_timings.json"
TIMINGS_SCHEMA = 1


class Telemetry:
    """One family's per-cell timing entries for a single bench run."""

    def __init__(self, family: str, jobs: int = 1):
        self.family = family
        self.jobs = jobs
        self.entries: list[dict] = []

    def add(self, cell_id: str, *, wall_us: int, cache: str, worker: int,
            queue_wait_us: int) -> None:
        self.entries.append({
            "cell": cell_id,
            "wall_us": int(wall_us),
            "cache": cache,
            "worker": int(worker),
            "queue_wait_us": int(queue_wait_us),
        })

    @property
    def hits(self) -> int:
        return sum(1 for e in self.entries if e["cache"] == "hit")

    @property
    def misses(self) -> int:
        return sum(1 for e in self.entries if e["cache"] != "hit")

    def to_payload(self) -> dict:
        return {
            "jobs": self.jobs,
            "cells": len(self.entries),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "total_wall_us": sum(e["wall_us"] for e in self.entries),
            "entries": self.entries,
        }


def load_timings(path: str = TIMINGS_PATH) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if not isinstance(payload, dict) or "families" not in payload:
        raise ValueError(f"{path} is not a timings artifact (no 'families')")
    return payload


def save_timings(telemetry: Telemetry, path: str = TIMINGS_PATH) -> dict:
    """Merge one family's telemetry into the artifact at ``path``.

    Other families' sections are preserved (a verify flow runs regress,
    scale and overlap back to back into the same file); an unreadable
    existing file is replaced rather than crashing the bench that is
    trying to report.
    """
    try:
        payload = load_timings(path)
    except (FileNotFoundError, ValueError, OSError):
        payload = {"schema": TIMINGS_SCHEMA, "families": {}}
    payload["schema"] = TIMINGS_SCHEMA
    payload["families"][telemetry.family] = telemetry.to_payload()
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return payload


def _rows(payload: dict) -> list[tuple[str, dict]]:
    out = []
    for family in sorted(payload.get("families", {})):
        for entry in payload["families"][family].get("entries", []):
            out.append((family, entry))
    return out


def format_timings(payload: dict, *, top: int | None = None) -> str:
    """The per-cell telemetry table; ``top`` selects the N slowest cells."""
    headers = ["family", "cell", "wall [us]", "cache", "worker", "wait [us]"]
    rows = _rows(payload)
    lines = []
    if top is not None:
        rows = sorted(rows, key=lambda r: -r[1]["wall_us"])[:top]
        lines.append(f"repro bench timings -- {len(rows)} slowest cell(s)")
    else:
        lines.append(f"repro bench timings -- {len(rows)} cell(s)")
    lines.append(format_table(
        headers,
        [
            [
                family,
                e["cell"],
                str(e["wall_us"]),
                e["cache"],
                str(e["worker"]) if e["worker"] >= 0 else "-",
                str(e["queue_wait_us"]),
            ]
            for family, e in rows
        ],
    ))
    for family in sorted(payload.get("families", {})):
        section = payload["families"][family]
        lines.append(
            f"{family}: {section.get('cells', 0)} cells, "
            f"jobs={section.get('jobs', 1)}, "
            f"{section.get('cache_hits', 0)} cache hit(s), "
            f"{section.get('cache_misses', 0)} miss(es), "
            f"total {section.get('total_wall_us', 0) / 1e6:.2f}s wall"
        )
    return "\n".join(lines)
