"""Experiment runners: one strategy on one machine, write + restart read.

:func:`run_checkpoint_experiment` is the unit every figure benchmark is
built from: it executes the checkpoint dump and the restart read as SPMD
programs on a simulated machine and reports virtual-time results plus
file-system counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..amr.hierarchy import GridHierarchy
from ..core.trace import IOTrace, trace_filesystem
from ..enzo.io_base import IOStrategy
from ..enzo.state import RankState
from ..mpi.runner import run_spmd
from ..topology.machine import Machine

__all__ = [
    "ExperimentResult",
    "OverlapResult",
    "run_checkpoint_experiment",
    "run_overlap_experiment",
    "run_traced_experiment",
]


@dataclass
class ExperimentResult:
    """Timings (simulated seconds) and volumes for one run."""

    machine: str
    strategy: str
    nprocs: int
    write_time: float
    read_time: float
    write_phases: dict
    read_phases: dict
    bytes_written: int
    bytes_read: int
    fs_write_requests: int
    fs_read_requests: int
    #: recovery events (retries/degradations) across write + read phases
    fs_recoveries: int = 0

    #: column names matching :meth:`row` (keep the two in sync).
    HEADERS = ["machine", "strategy", "P", "write [s]", "read [s]", "recov"]

    def row(self) -> list:
        return [
            self.machine,
            self.strategy,
            self.nprocs,
            f"{self.write_time:.3f}",
            f"{self.read_time:.3f}",
            self.fs_recoveries,
        ]


def run_checkpoint_experiment(
    machine: Machine,
    strategy: IOStrategy,
    hierarchy: GridHierarchy,
    *,
    nprocs: int | None = None,
    base: str = "ckpt",
    do_read: bool = True,
    read_op: str = "initial",
    read_hierarchy: GridHierarchy | None = None,
) -> ExperimentResult:
    """Dump ``hierarchy`` with ``strategy`` on ``machine``, then read back.

    The write and the read run as separate SPMD jobs against the same file
    system (so the read consumes the write's real bytes); times are the
    virtual-clock maxima across ranks for each operation alone.

    ``read_op`` selects the read path the paper's figures measure:
    ``"initial"`` (new-simulation read: every grid partitioned among all
    processors -- HDF4 reads through P0, the parallel strategies read
    collectively) or ``"restart"`` (round-robin whole-subgrid reads).
    """
    if read_op not in ("initial", "restart"):
        raise ValueError(f"unknown read_op {read_op!r}")
    nprocs = nprocs or machine.nprocs
    fs = machine.fs
    if fs is None:
        raise ValueError("machine has no file system")

    def write_program(comm):
        state = RankState.from_hierarchy(hierarchy, comm.rank, comm.size)
        return strategy.write_checkpoint(comm, state, base)

    machine.reset_timing()
    fs.counters.reset()
    wres = run_spmd(machine, write_program, nprocs=nprocs)
    write_time = max(s.elapsed for s in wres.results)
    write_phases = _merge_phases([s.phases for s in wres.results])
    bytes_written = fs.counters.bytes_written
    fs_write_requests = fs.counters.writes
    fs_recoveries = fs.counters.recoveries

    read_time = 0.0
    read_phases: dict = {}
    bytes_read = 0
    fs_read_requests = 0
    if do_read:
        # The read experiment consumes the *initial grids* when a separate
        # read hierarchy is given (the paper's new-simulation read measures
        # different data than the dump); create its files untimed.
        read_base = base
        if read_hierarchy is not None and read_hierarchy is not hierarchy:
            read_base = f"{base}.init"

            def init_write_program(comm):
                state = RankState.from_hierarchy(
                    read_hierarchy, comm.rank, comm.size
                )
                return strategy.write_checkpoint(comm, state, read_base)

            run_spmd(machine, init_write_program, nprocs=nprocs)

        def read_program(comm):
            if read_op == "initial":
                _state, stats = strategy.read_initial(comm, read_base)
            else:
                _state, stats = strategy.read_checkpoint(comm, read_base)
            return stats

        machine.reset_timing()
        fs.counters.reset()
        rres = run_spmd(machine, read_program, nprocs=nprocs)
        read_time = max(s.elapsed for s in rres.results)
        read_phases = _merge_phases([s.phases for s in rres.results])
        bytes_read = fs.counters.bytes_read
        fs_read_requests = fs.counters.reads
        fs_recoveries += fs.counters.recoveries

    return ExperimentResult(
        machine=machine.name,
        strategy=strategy.name,
        nprocs=nprocs,
        write_time=write_time,
        read_time=read_time,
        write_phases=write_phases,
        read_phases=read_phases,
        bytes_written=bytes_written,
        bytes_read=bytes_read,
        fs_write_requests=fs_write_requests,
        fs_read_requests=fs_read_requests,
        fs_recoveries=fs_recoveries,
    )


def run_traced_experiment(
    machine: Machine,
    strategy: IOStrategy,
    hierarchy: GridHierarchy,
    *,
    include_meta: bool = True,
    **kwargs,
) -> tuple[ExperimentResult, IOTrace]:
    """:func:`run_checkpoint_experiment` with the file system traced.

    The trace is detached before returning, so the machine can be reused
    untraced; it covers everything the experiment did (including untimed
    setup writes for a separate read hierarchy, if one was passed).
    """
    if machine.fs is None:
        raise ValueError("machine has no file system")
    trace = trace_filesystem(machine.fs, include_meta=include_meta)
    try:
        result = run_checkpoint_experiment(
            machine, strategy, hierarchy, **kwargs
        )
    finally:
        trace.detach()
    return result, trace


@dataclass
class OverlapResult:
    """One Enzo driver run: makespan plus the I/O cost the ranks *saw*.

    ``write_time`` sums each rank's per-dump exposed elapsed time (post +
    commit for an overlapped dump; the full dump for a synchronous one)
    and takes the maximum across ranks.  ``makespan`` is the virtual-time
    span of the whole run -- compute included -- which is what overlap
    actually shrinks.
    """

    machine: str
    strategy: str
    nprocs: int
    overlap: bool
    dumps: int
    makespan: float
    write_time: float
    write_phases: dict
    bytes_written: int
    fs_write_requests: int
    fs_recoveries: int

    @property
    def effective_write_bw(self) -> float:
        """Bytes per *exposed* I/O second (MB/s)."""
        if self.write_time <= 0:
            return 0.0
        return self.bytes_written / self.write_time / 2**20


def run_overlap_experiment(
    machine: Machine,
    strategy: IOStrategy,
    config,
    *,
    nprocs: int | None = None,
    base: str = "dump",
) -> OverlapResult:
    """Run the Enzo driver (compute cycles + periodic dumps) on ``machine``.

    With ``config.overlap`` and an async-capable strategy, dump *k* drains
    in the background while cycle *k+1* computes (double-buffered
    write-behind); the returned ``write_time`` then counts only the time
    the application was actually blocked on I/O.  The workload hierarchy
    is built fresh from ``config`` so repeated runs are independent.
    """
    from ..enzo.simulation import EnzoSimulation

    nprocs = nprocs or machine.nprocs
    fs = machine.fs
    if fs is None:
        raise ValueError("machine has no file system")
    sim = EnzoSimulation(
        config=config,
        strategy=strategy,
        hierarchy=EnzoSimulation.build_initial_hierarchy(config),
    )

    machine.reset_timing()
    fs.counters.reset()
    res = run_spmd(
        machine, lambda comm: sim.run(comm, base=base), nprocs=nprocs
    )
    summaries = res.results
    write_time = max(s["write_time"] for s in summaries)
    write_phases = _merge_phases(
        [_sum_phases(s["write_stats"]) for s in summaries]
    )
    return OverlapResult(
        machine=machine.name,
        strategy=strategy.name,
        nprocs=nprocs,
        overlap=bool(getattr(config, "overlap", False)),
        dumps=len(summaries[0]["dumps"]),
        makespan=res.elapsed,
        write_time=write_time,
        write_phases=write_phases,
        bytes_written=fs.counters.bytes_written,
        fs_write_requests=fs.counters.writes,
        fs_recoveries=fs.counters.recoveries,
    )


def _sum_phases(stats: list) -> dict:
    """Total per phase across one rank's dumps."""
    out: dict = {}
    for s in stats:
        for k, v in s.phases.items():
            out[k] = out.get(k, 0.0) + v
    return out


def _merge_phases(per_rank: list[dict]) -> dict:
    """Max across ranks per phase (the critical-path view)."""
    out: dict = {}
    for phases in per_rank:
        for k, v in phases.items():
            out[k] = max(out.get(k, 0.0), v)
    return out
