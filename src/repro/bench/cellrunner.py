"""The shared cell-runner layer under every bench matrix.

A *cell* is one pure experiment: a picklable spec (which machine, which
strategy, how many processors, ...) that deterministically maps to one
canonical JSON record.  The regress, scale, overlap and insights matrices
all reduce to the same shape -- iterate specs, run each into a record,
evaluate trend assertions over the records, diff against a committed
baseline -- so the shared machinery lives here once instead of being
copied per matrix (it used to be triplicated across ``regression.py``,
``scale.py`` and ``overlap.py``):

* :class:`CellFamily` -- the registration record binding a family name to
  its run/id/spec functions.  The name is the *wire format*: the process
  pool in :mod:`repro.bench.executor` ships ``(family_name, cell)`` to a
  worker, which resolves the family by name and runs the cell there.
* :func:`evaluate_trend` -- one trend assertion against live records.
* :func:`compare_records` / :class:`GateReport` /
  :func:`format_gate_report` -- the baseline diff (exact counters, banded
  metrics, optional golden digest, trend violations) and its table.

Determinism contract: a cell's record is a function of its spec alone --
simulated clocks, seeded workloads and golden digests guarantee that
*where* or *when* a cell runs (serial, process pool, cache replay) cannot
change a single byte of its record.  Everything the executor and the
content-addressed cache do rests on that property, and the test suite
asserts it (parallel == serial byte-for-byte).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from ..core.report import format_table

__all__ = [
    "CellFamily",
    "GateReport",
    "compare_records",
    "evaluate_trend",
    "format_gate_report",
    "get_family",
    "register_family",
]


@dataclass(frozen=True)
class CellFamily:
    """One bench matrix's cell protocol, registered under a stable name.

    ``run(cell, extra)`` must be a *pure* function of its arguments: it
    builds its own machine and file system from presets and returns the
    canonical record dict.  ``extra`` carries per-cell overrides (e.g. the
    regress family's ``--perturb`` hints) and is part of the cache key via
    ``spec``.
    """

    name: str
    #: (cell, extra) -> canonical record dict; must be picklable-safe in
    #: the sense that it is resolved by family *name* inside workers.
    run: Callable
    #: cell -> stable string id (the record key in payloads and reports).
    cell_id: Callable
    #: (cell, extra) -> JSON-serializable canonical spec (cache identity).
    spec: Callable
    #: cell -> one-line human description for progress output.
    describe: Callable


#: Families register themselves at import; workers resolve lazily by name
#: so the executor never pickles callables across the process boundary.
_FAMILIES: dict[str, CellFamily] = {}

_FAMILY_MODULES = {
    "regress": "repro.bench.regression",
    "scale": "repro.bench.scale",
    "overlap": "repro.bench.overlap",
    "insights": "repro.bench.insights_smoke",
}


def register_family(family: CellFamily) -> CellFamily:
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> CellFamily:
    """Resolve a family by name, importing its module on first use."""
    if name not in _FAMILIES:
        module = _FAMILY_MODULES.get(name)
        if module is None:
            raise ValueError(
                f"unknown cell family {name!r} "
                f"(have: {', '.join(sorted(_FAMILY_MODULES))})"
            )
        importlib.import_module(module)
    return _FAMILIES[name]


# -- trend evaluation ---------------------------------------------------------


def evaluate_trend(t, records: dict) -> dict:
    """One trend against live records; ratio trends divide each side.

    String-valued metrics (golden file digests pinned with an ``eq``
    relation) are compared verbatim; ratio divisors and the right-hand
    scale factor only apply to numeric metrics.
    """
    rmetric = getattr(t, "right_metric", None) or t.metric
    lhs = records[t.left][t.metric]
    rhs = records[t.right][rmetric]
    out = {
        "id": t.id,
        "description": t.description,
        "metric": t.metric,
        "left": t.left,
        "relation": t.relation,
        "right": t.right,
    }
    if rmetric != t.metric:
        out["right_metric"] = rmetric
    if isinstance(lhs, str) or isinstance(rhs, str):
        out["lhs"], out["rhs"] = lhs, rhs
        out["ok"] = t.holds(lhs, rhs)
        return out
    if t.left_div is not None:
        lhs /= records[t.left_div][t.metric] or 1.0
        out["left_div"] = t.left_div
    if t.right_div is not None:
        rhs /= records[t.right_div][rmetric] or 1.0
        out["right_div"] = t.right_div
    rfactor = getattr(t, "rfactor", 1.0)
    if rfactor != 1.0:
        rhs *= rfactor
        out["rfactor"] = rfactor
    out["lhs"] = round(float(lhs), 6)
    out["rhs"] = round(float(rhs), 6)
    out["ok"] = t.holds(lhs, rhs)
    return out


# -- baseline comparison ------------------------------------------------------


class GateReport:
    """The outcome of one compare: violations plus coverage counts."""

    def __init__(self, violations: list[dict], cells_checked: int,
                 trends_checked: int):
        self.violations = violations
        self.cells_checked = cells_checked
        self.trends_checked = trends_checked

    @property
    def ok(self) -> bool:
        return not self.violations


def _fmt_side(value) -> str:
    """One side of a trend for the report: numbers short, digests clipped."""
    if isinstance(value, (int, float)):
        return f"{value:.4g}"
    return str(value)[:18]


def _band_violation(cell_id, metric, cur, base, rtol):
    if base == 0 and cur == 0:
        return None
    denom = abs(base) if base else 1.0
    delta = (cur - base) / denom
    if abs(delta) <= rtol:
        return None
    return {
        "cell": cell_id,
        "kind": "band",
        "metric": metric,
        "current": cur,
        "baseline": base,
        "detail": f"{delta:+.1%} vs baseline (band ±{rtol:.0%})",
    }


def compare_records(
    current: dict,
    baseline: dict,
    *,
    exact_metrics: tuple,
    banded_metrics: tuple,
    default_rtol: float,
    rtol: float | None = None,
    digest_metric: str | None = None,
    trend_baseline: str = "paper",
) -> GateReport:
    """Compare a fresh run against a committed baseline payload.

    Only cells present in ``current`` are compared (so ``--cell`` subsets
    check their slice of the baseline); a selected cell missing from the
    baseline is itself a violation -- the gate must never silently skip.
    Trend assertions are taken from ``current`` (they were evaluated
    against live numbers by the matrix runner).  ``digest_metric`` names
    the golden-digest field when the family pins one.
    """
    rtol = baseline.get("rtol", default_rtol) if rtol is None else rtol
    violations: list[dict] = []
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    for cell_id, cur in sorted(cur_cells.items()):
        base = base_cells.get(cell_id)
        if base is None:
            violations.append({
                "cell": cell_id, "kind": "missing-cell", "metric": "-",
                "current": "-", "baseline": "-",
                "detail": "cell not in baseline (run --update-baseline)",
            })
            continue
        if digest_metric and cur[digest_metric] != base[digest_metric]:
            violations.append({
                "cell": cell_id, "kind": "digest", "metric": digest_metric,
                "current": cur[digest_metric][:18] + "...",
                "baseline": base[digest_metric][:18] + "...",
                "detail": "golden trace diverged (determinism/behaviour change)",
            })
        for metric in banded_metrics:
            v = _band_violation(cell_id, metric, cur[metric], base[metric], rtol)
            if v:
                violations.append(v)
        for metric in exact_metrics:
            if cur.get(metric) != base.get(metric):
                violations.append({
                    "cell": cell_id, "kind": "count", "metric": metric,
                    "current": cur.get(metric), "baseline": base.get(metric),
                    "detail": "exact-match counter changed",
                })
    for trend in current.get("trends", []):
        if not trend["ok"]:
            lhs = trend.get("lhs")
            if lhs is None:  # payloads from before ratio trends
                lhs = cur_cells[trend["left"]][trend["metric"]]
            rhs = trend.get("rhs")
            if rhs is None:
                rhs = cur_cells[trend["right"]][trend["metric"]]
            violations.append({
                "cell": f"{trend['left']} vs {trend['right']}",
                "kind": "trend", "metric": trend["metric"],
                "current": f"{_fmt_side(lhs)} {trend['relation']}? "
                           f"{_fmt_side(rhs)}",
                "baseline": trend_baseline,
                "detail": f"{trend['id']}: {trend['description']}",
            })
    return GateReport(
        violations, len(cur_cells), len(current.get("trends", []))
    )


def format_gate_report(
    report: GateReport,
    *,
    title: str,
    pass_detail: str,
    trend_noun: str = "paper-trend",
) -> str:
    """Readable gate outcome: a per-cell diff table naming each violation."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"{report.cells_checked} cells, {report.trends_checked} {trend_noun} "
        f"assertions checked"
    )
    if report.ok:
        lines.append(f"gate: PASS ({pass_detail})")
        return "\n".join(lines)
    lines.append(f"gate: FAIL ({len(report.violations)} violation(s))\n")
    rows = [
        [
            v["cell"],
            v["kind"],
            v["metric"],
            str(v["baseline"]),
            str(v["current"]),
            v["detail"],
        ]
        for v in report.violations
    ]
    lines.append(
        format_table(
            ["cell", "check", "metric", "baseline", "current", "why"], rows
        )
    )
    return "\n".join(lines)
