"""The HDF4 SD (Scientific Data Set) interface: sequential, one process.

API shape mirrors the real library closely enough that the ENZO code paths
read naturally::

    sd = SDFile.start(comm, "dump", "w")      # SDstart
    sds = sd.create("density", np.float64, (64, 64, 64))   # SDcreate
    sds.write(density_array)                  # SDwritedata (whole array)
    sd.end()                                  # SDend

    sd = SDFile.start(comm, "dump", "r")
    arr = sd.select("density").read()         # SDselect + SDreaddata

HDF4 has no parallel interface: every call runs on the calling rank alone
and issues sequential, blocking file-system requests through the ADIO layer
(this is exactly why the original ENZO funnels everything through processor
0).  A small per-call software overhead models the library's bookkeeping.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpi.comm import Comm
from ..mpiio.adio import ADIOFile
from ..pfs.base import FileSystem
from .format import (
    HEADER_SIZE,
    DDEntry,
    pack_dd,
    pack_header,
    unpack_dds,
    unpack_header,
)

__all__ = ["SDFile", "SDS"]

#: Per-library-call software overhead (seconds); HDF4's internal DD/linked
#: list management was cheap but not free.
SD_CALL_OVERHEAD = 50e-6


class SDS:
    """A selected/created scientific data set within an :class:`SDFile`."""

    def __init__(self, sd: "SDFile", entry: DDEntry):
        self._sd = sd
        self.entry = entry

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.entry.shape

    @property
    def dtype(self) -> np.dtype:
        return self.entry.dtype

    def write(self, data: np.ndarray) -> None:
        """Write the entire array (SDwritedata with full extent)."""
        self._sd._check_writable()
        data = np.ascontiguousarray(data, dtype=self.entry.dtype)
        if data.shape != self.entry.shape:
            raise ValueError(
                f"data shape {data.shape} != dataset shape {self.entry.shape}"
            )
        self._sd._overhead()
        self._sd._adio.write_contig(self.entry.data_offset, data)

    def read(self) -> np.ndarray:
        """Read the entire array."""
        self._sd._overhead()
        raw = self._sd._adio.read_contig(
            self.entry.data_offset, self.entry.data_nbytes
        )
        return (
            np.frombuffer(raw, dtype=self.entry.dtype)
            .reshape(self.entry.shape)
            .copy()
        )


class SDFile:
    """An open HDF4 SD file bound to one rank."""

    def __init__(self, adio: ADIOFile, comm: Comm, mode: str):
        self._adio = adio
        self._comm = comm
        self.mode = mode
        self._entries: list[DDEntry] = []
        self._by_name: dict[str, DDEntry] = {}
        self._data_end = HEADER_SIZE
        self._open = True
        if mode == "r":
            self._load_index()

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def start(
        cls,
        comm: Comm,
        path: str,
        mode: str = "r",
        *,
        fs: Optional[FileSystem] = None,
        retry=None,
    ) -> "SDFile":
        """SDstart: open ``path`` on the calling rank only."""
        if mode not in ("r", "w"):
            raise ValueError(f"bad mode {mode!r}")
        fs = fs if fs is not None else comm.machine.fs
        if fs is None:
            raise ValueError("no file system attached to the machine")
        proc = comm.proc
        node = comm.machine.node_of(comm.group[comm.rank])
        proc.schedule_point()
        if mode == "w":
            done = fs.create(path, node=node, ready_time=proc.clock)
        else:
            done = fs.open(path, node=node, ready_time=proc.clock)
        proc.advance_to(done)
        return cls(ADIOFile(fs, path, comm, retry=retry), comm, mode)

    def end(self) -> None:
        """SDend: flush the DD table and header (write mode), then close."""
        if not self._open:
            return
        if self.mode == "w":
            self._overhead()
            dd_offset = self._data_end
            blob = b"".join(pack_dd(e) for e in self._entries)
            self._adio.write_contig(dd_offset, blob)
            self._adio.write_contig(0, pack_header(dd_offset, len(self._entries)))
        self._adio.close()
        self._open = False

    # -- dataset management ------------------------------------------------------

    def create(self, name: str, dtype, shape) -> SDS:
        """SDcreate: allocate a new named array after the current data end."""
        self._check_writable()
        if name in self._by_name:
            raise ValueError(f"dataset {name!r} already exists")
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        entry = DDEntry(name, dtype, shape, self._data_end, nbytes)
        self._entries.append(entry)
        self._by_name[name] = entry
        self._data_end += nbytes
        self._overhead()
        return SDS(self, entry)

    def select(self, name: str) -> SDS:
        """SDselect: look up a dataset by name."""
        self._overhead()
        try:
            return SDS(self, self._by_name[name])
        except KeyError:
            raise KeyError(f"no dataset named {name!r}") from None

    def datasets(self) -> list[str]:
        """Names in creation order."""
        return [e.name for e in self._entries]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- internals ---------------------------------------------------------------

    def _load_index(self) -> None:
        raw = self._adio.read_contig(0, HEADER_SIZE)
        _, dd_offset, ndd = unpack_header(raw)
        size = self._adio.size()
        blob = self._adio.read_contig(dd_offset, size - dd_offset)
        self._entries = unpack_dds(blob, ndd)
        self._by_name = {e.name: e for e in self._entries}
        self._data_end = dd_offset

    def _check_writable(self) -> None:
        if not self._open:
            raise ValueError("file is closed")
        if self.mode != "w":
            raise ValueError("file not opened for writing")

    def _overhead(self) -> None:
        self._comm.compute(SD_CALL_OVERHEAD)
