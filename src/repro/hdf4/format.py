"""On-disk format of the simulated HDF4 Scientific Data Set files.

Real HDF4 stores a magic number and a linked list of data descriptors (DDs)
pointing at named objects.  We keep the same skeleton, simplified: a fixed
header, datasets appended contiguously, and a DD table appended at ``end()``
with its offset patched into the header.  All numbers are little-endian.

Layout::

    0        : magic "SDF4", version u32, dd_offset u64, ndatasets u32
    20       : dataset payloads, back to back (in creation order)
    dd_offset: DD entries, one per dataset

DD entry::

    name_len u16, name bytes, dtype_code u8, rank u8,
    dims u64 * rank, data_offset u64, data_nbytes u64
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["MAGIC", "HEADER_SIZE", "DDEntry", "pack_header", "unpack_header",
           "pack_dd", "unpack_dds", "DTYPE_CODES", "CODE_DTYPES"]

MAGIC = b"SDF4"
_HEADER = struct.Struct("<4sIQI")
HEADER_SIZE = _HEADER.size

DTYPE_CODES = {
    np.dtype(np.float64): 0,
    np.dtype(np.float32): 1,
    np.dtype(np.int64): 2,
    np.dtype(np.int32): 3,
    np.dtype(np.uint8): 4,
}
CODE_DTYPES = {v: k for k, v in DTYPE_CODES.items()}


@dataclass
class DDEntry:
    """One data descriptor: a named n-D array somewhere in the file."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    data_offset: int
    data_nbytes: int

    def __post_init__(self) -> None:
        self.dtype = np.dtype(self.dtype)
        self.shape = tuple(int(s) for s in self.shape)
        if self.dtype not in DTYPE_CODES:
            raise TypeError(f"unsupported dtype {self.dtype}")


def pack_header(dd_offset: int, ndatasets: int, version: int = 1) -> bytes:
    return _HEADER.pack(MAGIC, version, dd_offset, ndatasets)


def unpack_header(raw: bytes) -> tuple[int, int, int]:
    """Returns ``(version, dd_offset, ndatasets)``; raises on bad magic."""
    magic, version, dd_offset, ndd = _HEADER.unpack(raw[:HEADER_SIZE])
    if magic != MAGIC:
        raise ValueError(f"not an SDF4 file (magic {magic!r})")
    return version, dd_offset, ndd


def pack_dd(entry: DDEntry) -> bytes:
    name_b = entry.name.encode("utf-8")
    if len(name_b) > 0xFFFF:
        raise ValueError("dataset name too long")
    parts = [struct.pack("<H", len(name_b)), name_b]
    parts.append(
        struct.pack("<BB", DTYPE_CODES[entry.dtype], len(entry.shape))
    )
    parts.append(struct.pack(f"<{len(entry.shape)}Q", *entry.shape))
    parts.append(struct.pack("<QQ", entry.data_offset, entry.data_nbytes))
    return b"".join(parts)


def unpack_dds(raw: bytes, count: int) -> list[DDEntry]:
    """Parse ``count`` DD entries from ``raw``."""
    out: list[DDEntry] = []
    pos = 0
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", raw, pos)
        pos += 2
        name = raw[pos : pos + name_len].decode("utf-8")
        pos += name_len
        code, rank = struct.unpack_from("<BB", raw, pos)
        pos += 2
        shape = struct.unpack_from(f"<{rank}Q", raw, pos)
        pos += 8 * rank
        data_offset, data_nbytes = struct.unpack_from("<QQ", raw, pos)
        pos += 16
        out.append(DDEntry(name, CODE_DTYPES[code], shape, data_offset, data_nbytes))
    return out
