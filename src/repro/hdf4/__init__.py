"""Sequential HDF4-like Scientific Data Set library (the original ENZO I/O)."""

from .format import DDEntry
from .sd import SDS, SD_CALL_OVERHEAD, SDFile

__all__ = ["SDFile", "SDS", "DDEntry", "SD_CALL_OVERHEAD"]
