"""The MPI-IO ``File`` API (the subset ROMIO-era applications used).

Open/close and ``*_all`` operations are collective; ``*_at`` operations are
independent.  Offsets follow MPI semantics: they count *etype units within
the current file view*, not raw bytes (with the default byte view the two
coincide).  Buffers are numpy arrays or bytes-like objects.

Typical baryon-field write from the paper::

    fh = File.open(comm, "dump", "w")
    ftype = Subarray(global_shape, local_shape, starts, FLOAT64)
    fh.set_view(disp, FLOAT64, ftype)
    fh.write_all(local_block)          # two-phase collective write
    fh.close()
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..aio.core import AioRequest
from ..mpi import collectives as coll
from ..mpi.comm import Comm
from ..mpi.datatypes import BYTE, Datatype
from ..pfs.base import FileSystem
from .adio import ADIOFile
from .fileview import FileView
from .hints import Hints
from .sieving import sieve_read, sieve_write
from .two_phase import collective_read, collective_write

__all__ = ["File"]


class File:
    """An MPI-IO file handle (one instance per rank, opened collectively)."""

    def __init__(self, comm: Comm, adio: ADIOFile, hints: Hints):
        self.comm = comm
        self.adio = adio
        self.hints = hints
        self.view = FileView()
        self._pointer = 0  # individual file pointer, in etype units
        # Write-behind staging buffer (absolute byte offset + bytes).
        self._wb_start: int | None = None
        self._wb_buf = bytearray()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        comm: Comm,
        path: str,
        mode: str = "r",
        *,
        fs: Optional[FileSystem] = None,
        hints: Optional[Hints] = None,
        retry=None,
        aio=None,
    ) -> "File":
        """Collectively open ``path``.  Modes: 'r', 'w' (create), 'rw', 'a'.

        ``fs`` defaults to the machine's attached file system.  ``retry``
        is an optional :class:`~repro.resilience.RetryPolicy` applied to
        every data operation on the returned handle.  ``aio`` is an
        optional :class:`~repro.aio.AioConfig`: with it, writes are posted
        to the rank's background flush service (nonblocking semantics) and
        ``iwrite_at``/``iwrite_at_all`` return genuinely pending requests.
        """
        if mode not in ("r", "w", "rw", "a"):
            raise ValueError(f"bad mode {mode!r}")
        fs = fs if fs is not None else comm.machine.fs
        if fs is None:
            raise ValueError("no file system attached to the machine")
        hints = (hints or Hints()).validate()
        proc = comm.proc
        # Rank 0 performs the create/open metadata operation; everyone else
        # opens after it (barrier orders the create before other opens).
        if comm.rank == 0:
            proc.schedule_point()
            if mode == "w":
                if (hints.striping_unit or hints.striping_factor) and hasattr(
                    fs, "set_file_striping"
                ):
                    fs.set_file_striping(
                        path,
                        stripe_size=hints.striping_unit or None,
                        stripe_count=hints.striping_factor or None,
                    )
                done = fs.create(path, node=comm.machine.node_of(comm.group[0]),
                                 ready_time=proc.clock)
            else:
                done = fs.open(
                    path,
                    node=comm.machine.node_of(comm.group[0]),
                    ready_time=proc.clock,
                    create=mode in ("rw", "a"),
                )
            proc.advance_to(done)
        coll.barrier(comm)
        if comm.rank != 0:
            proc.schedule_point()
            done = fs.open(
                path,
                node=comm.machine.node_of(comm.group[comm.rank]),
                ready_time=proc.clock,
            )
            proc.advance_to(done)
        return cls(comm, ADIOFile(fs, path, comm, retry=retry, aio=aio), hints)

    def close(self) -> None:
        """Collective close; flushes any write-behind buffer first.

        Posted asynchronous writes stay pending past close -- the flush
        barrier before a manifest commit (or an explicit request wait)
        retires them; the bytes themselves landed at post time.
        """
        self._wb_flush()
        coll.barrier(self.comm)
        self.adio.close()

    def sync(self) -> None:
        """Flush client-side buffering to the file system (MPI_File_sync)."""
        self._wb_flush()

    # -- views ------------------------------------------------------------------

    def set_view(
        self, disp: int = 0, etype: Datatype = BYTE, filetype: Optional[Datatype] = None
    ) -> None:
        """Set this rank's file view; resets the individual file pointer."""
        self._wb_flush()
        self.view = FileView(disp=disp, etype=etype, filetype=filetype or etype)
        self._pointer = 0

    # -- write-behind buffering ------------------------------------------------

    def _wb_flush(self) -> None:
        if self._wb_start is not None and self._wb_buf:
            self.adio.write_contig(self._wb_start, self._wb_buf)
        self._wb_start = None
        self._wb_buf = bytearray()

    def _wb_stage(self, abs_offset: int, buf) -> bool:
        """Stage a contiguous write; returns False if not bufferable."""
        wb = self.hints.wb_buffer_size
        if wb <= 0:
            return False
        data = memoryview(np.ascontiguousarray(buf)).cast("B") if isinstance(
            buf, np.ndarray
        ) else memoryview(buf).cast("B")
        if self._wb_start is not None and (
            abs_offset != self._wb_start + len(self._wb_buf)
        ):
            self._wb_flush()  # a seek: flush the previous run
        if self._wb_start is None:
            self._wb_start = abs_offset
        self._wb_buf.extend(data)
        if len(self._wb_buf) >= wb:
            self._wb_flush()
        return True

    # -- helpers ------------------------------------------------------------------

    def _segments_for(self, offset_etypes: int, nbytes: int) -> list[tuple[int, int]]:
        stream_off = self.view.byte_offset(offset_etypes)
        if self.view.is_contiguous:
            return [(self.view.disp + stream_off, nbytes)] if nbytes else []
        return self.view.map_stream(stream_off, nbytes)

    def view_segments(self, offset_etypes: int, nbytes: int) -> list[tuple[int, int]]:
        """The (file_offset, nbytes) segments ``nbytes`` of data occupy
        under the current view -- what a manifest needs to checksum a
        rank's share of a collective write."""
        return self._segments_for(offset_etypes, nbytes)

    @staticmethod
    def _nbytes(buf) -> int:
        if isinstance(buf, np.ndarray):
            return buf.nbytes
        return len(memoryview(buf).cast("B"))

    def _unpack(self, raw: bytes, like) -> np.ndarray | bytes:
        if isinstance(like, np.ndarray):
            return np.frombuffer(raw, dtype=like.dtype).reshape(like.shape).copy()
        return raw

    # -- independent I/O -----------------------------------------------------------

    def read_at(self, offset: int, buf_or_nbytes) -> np.ndarray | bytes:
        """Independent read at an explicit (etype-unit) view offset.

        Pass either a numpy array *template* (its dtype/shape describe the
        result) or a byte count.  Data sieving applies when the view is
        non-contiguous and the ``ds_read`` hint is on.
        """
        self._wb_flush()  # reads must observe buffered writes
        if isinstance(buf_or_nbytes, int):
            nbytes, like = buf_or_nbytes, None
        else:
            nbytes, like = self._nbytes(buf_or_nbytes), buf_or_nbytes
        segs = self._segments_for(offset, nbytes)
        if self.hints.use_listio and len(segs) > 1:
            raw = self.adio.read_list(segs)
        else:
            raw = sieve_read(self.adio, segs, self.hints)
        return self._unpack(raw, like) if like is not None else raw

    def write_at(self, offset: int, buf) -> int:
        """Independent write at an explicit (etype-unit) view offset."""
        nbytes = self._nbytes(buf)
        if self.view.is_contiguous and self.hints.wb_buffer_size > 0:
            abs_off = self.view.disp + self.view.byte_offset(offset)
            if self._wb_stage(abs_off, buf):
                return nbytes
        segs = self._segments_for(offset, nbytes)
        if self.hints.use_listio and len(segs) > 1:
            return self.adio.write_list(segs, buf)
        return sieve_write(self.adio, segs, buf, self.hints)

    # -- individual-file-pointer I/O ----------------------------------------------

    def seek(self, offset_etypes: int) -> None:
        if offset_etypes < 0:
            raise ValueError("negative seek")
        self._pointer = offset_etypes

    def tell(self) -> int:
        return self._pointer

    def _advance_pointer(self, nbytes: int) -> None:
        if nbytes % self.view.etype.size:
            raise ValueError("partial etype transfer")
        self._pointer += nbytes // self.view.etype.size

    def read(self, buf_or_nbytes) -> np.ndarray | bytes:
        """Independent read at the individual file pointer."""
        out = self.read_at(self._pointer, buf_or_nbytes)
        n = buf_or_nbytes if isinstance(buf_or_nbytes, int) else self._nbytes(out)
        self._advance_pointer(n)
        return out

    def write(self, buf) -> int:
        """Independent write at the individual file pointer."""
        n = self.write_at(self._pointer, buf)
        self._advance_pointer(n)
        return n

    # -- nonblocking I/O (repro.aio request objects) ---------------------------

    def iwrite_at(self, offset: int, buf):
        """Nonblocking independent write (``MPI_File_iwrite_at``).

        Returns an :class:`~repro.aio.AioRequest` with ``test(proc)`` /
        ``wait(proc)`` semantics.  Without an ``aio`` config on the handle
        the write completes immediately and the request is pre-completed.
        """
        self._wb_flush()
        nbytes = self._nbytes(buf)
        segs = self._segments_for(offset, nbytes)
        if len(segs) == 1:
            return self.adio.iwrite_contig(segs[0][0], buf)
        return self.adio.iwrite_list(segs, buf)

    def iwrite_at_all(self, offset: int, buf):
        """Nonblocking collective write (``MPI_File_iwrite_at_all``).

        Split-phase two-phase I/O: the exchange phase runs synchronously
        (it is communication, every rank must participate now), while the
        aggregators' file writes are posted to the background flush
        service.  The returned request completes when this rank's share of
        the drain is done; waiting on it surfaces deferred I/O errors.
        """
        self._wb_flush()
        nbytes = self._nbytes(buf)
        segs = self._segments_for(offset, nbytes)
        before = self.adio._post_seq
        collective_write(self.comm, self.adio, segs, buf, self.hints)
        if self.adio.aio is not None and self.adio._post_seq > before:
            return self.adio._last_posted
        return AioRequest(
            path=self.adio.path, nbytes=nbytes,
            done_time=self.comm.proc.clock, retired=True,
        )

    # -- collective I/O ---------------------------------------------------------------

    def read_at_all(self, offset: int, buf_or_nbytes) -> np.ndarray | bytes:
        """Collective (two-phase) read; all ranks of the comm must call."""
        self._wb_flush()
        if isinstance(buf_or_nbytes, int):
            nbytes, like = buf_or_nbytes, None
        else:
            nbytes, like = self._nbytes(buf_or_nbytes), buf_or_nbytes
        segs = self._segments_for(offset, nbytes)
        raw = collective_read(self.comm, self.adio, segs, self.hints)
        return self._unpack(raw, like) if like is not None else raw

    def write_at_all(self, offset: int, buf) -> int:
        """Collective (two-phase) write; all ranks of the comm must call."""
        self._wb_flush()
        nbytes = self._nbytes(buf)
        segs = self._segments_for(offset, nbytes)
        collective_write(self.comm, self.adio, segs, buf, self.hints)
        return nbytes

    def read_all(self, buf_or_nbytes) -> np.ndarray | bytes:
        """Collective read at the individual file pointer."""
        out = self.read_at_all(self._pointer, buf_or_nbytes)
        n = buf_or_nbytes if isinstance(buf_or_nbytes, int) else self._nbytes(out)
        self._advance_pointer(n)
        return out

    def write_all(self, buf) -> int:
        """Collective write at the individual file pointer."""
        n = self.write_at_all(self._pointer, buf)
        self._advance_pointer(n)
        return n

    # -- shared-file-pointer I/O ----------------------------------------------------

    def _shared_key(self) -> tuple:
        return ("mpiio.shared_fp", self.adio.path, self._ctx_id())

    def _ctx_id(self) -> int:
        return self.comm._ctx

    def _bump_shared(self, n_etypes: int) -> int:
        """Atomically fetch-and-add the shared file pointer (etype units).

        The engine serialises ranks at schedule points, so the ordering of
        concurrent shared-pointer operations is the deterministic virtual
        -time order -- the semantics of ``MPI_File_write_shared``.
        """
        self.comm.proc.schedule_point()
        ns = self.comm.world.__dict__.setdefault("_shared_fp", {})
        key = self._shared_key()
        current = ns.get(key, 0)
        ns[key] = current + n_etypes
        return current

    def read_shared(self, buf_or_nbytes) -> np.ndarray | bytes:
        """Independent read at the *shared* file pointer (FCFS ordered)."""
        nbytes = (
            buf_or_nbytes
            if isinstance(buf_or_nbytes, int)
            else self._nbytes(buf_or_nbytes)
        )
        if nbytes % self.view.etype.size:
            raise ValueError("partial etype transfer")
        offset = self._bump_shared(nbytes // self.view.etype.size)
        return self.read_at(offset, buf_or_nbytes)

    def write_shared(self, buf) -> int:
        """Independent write at the *shared* file pointer (FCFS ordered)."""
        nbytes = self._nbytes(buf)
        if nbytes % self.view.etype.size:
            raise ValueError("partial etype transfer")
        offset = self._bump_shared(nbytes // self.view.etype.size)
        self.write_at(offset, buf)
        return nbytes

    # -- metadata ------------------------------------------------------------------------

    def get_size(self) -> int:
        """Current file size in bytes."""
        return self.adio.size()
