"""MPI-IO (ROMIO-like) parallel I/O library.

Layering, mirroring ROMIO:

* :class:`ADIOFile` -- contiguous device primitives per file system;
* :class:`FileView` -- (disp, etype, filetype) view arithmetic;
* :mod:`~repro.mpiio.sieving` -- independent I/O with data sieving;
* :mod:`~repro.mpiio.two_phase` -- collective I/O with file domains;
* :class:`File` -- the user-facing MPI-IO handle;
* :class:`Hints` -- the MPI_Info knobs.
"""

from .adio import ADIOFile
from .file import File
from .fileview import FileView, map_stream
from .hints import Hints
from .sieving import plan_extents, sieve_read, sieve_write
from .two_phase import (
    aggregator_ranks,
    collective_read,
    collective_write,
    file_domains,
)

__all__ = [
    "File",
    "Hints",
    "ADIOFile",
    "FileView",
    "map_stream",
    "plan_extents",
    "sieve_read",
    "sieve_write",
    "collective_read",
    "collective_write",
    "aggregator_ranks",
    "file_domains",
]
