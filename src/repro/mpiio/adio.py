"""ADIO: the abstract I/O device layer (Thakur, Gropp, Lusk).

ROMIO is implemented portably on top of ADIO, a small set of contiguous
read/write primitives that each file system implements.  Everything clever
(file views, data sieving, two-phase collective I/O) lives above this layer
and is file-system independent -- exactly the structure we reproduce here.

:class:`ADIOFile` binds one rank to one file of a
:class:`~repro.pfs.base.FileSystem`: contiguous byte reads/writes at explicit
offsets, with the rank's virtual clock advanced to the operation's completion
(blocking POSIX-style semantics).
"""

from __future__ import annotations

import numpy as np

from ..aio.core import AioConfig, AioRequest, progress_engine
from ..mpi.comm import Comm
from ..pfs.base import FileSystem, InjectedIOError
from ..resilience.retry import RetryPolicy

__all__ = ["ADIOFile", "as_byte_view"]


def as_byte_view(data) -> memoryview:
    """Expose any buffer-ish object as a flat byte view (no copy)."""
    if isinstance(data, np.ndarray):
        return memoryview(np.ascontiguousarray(data)).cast("B")
    return memoryview(data).cast("B")


class ADIOFile:
    """Per-rank handle for raw contiguous file access with timing.

    With a :class:`~repro.resilience.RetryPolicy` attached, every primitive
    retries transient :class:`~repro.pfs.base.InjectedIOError` failures up
    to ``max_retries`` times, backing off in simulated time between
    attempts and reporting each retry / recovery / give-up through
    :meth:`FileSystem.notify_recovery` (visible in the trace).  Without a
    policy the first failure propagates, as before.
    """

    def __init__(
        self,
        fs: FileSystem,
        path: str,
        comm: Comm,
        retry: RetryPolicy | None = None,
        aio: AioConfig | None = None,
    ):
        self.fs = fs
        self.path = path
        self.comm = comm
        self.retry = retry
        self.aio = aio
        self._closed = False
        # Last request posted through this handle (and a sequence counter
        # so callers can tell whether an operation posted anything).
        self._last_posted: AioRequest | None = None
        self._post_seq = 0

    @property
    def _node(self) -> int:
        world_rank = self.comm.group[self.comm.rank]
        return self.comm.machine.node_of(world_rank)

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"I/O on closed file {self.path!r}")

    # -- retry engine -----------------------------------------------------

    def _issue(self, issue, nbytes: int, *, sched: bool = True):
        """Run ``issue(ready_time) -> (result, done)`` with bounded retries.

        Retries only the file-system failure mode (``InjectedIOError``);
        programming errors propagate immediately.  Each retry advances the
        rank's clock by the policy's backoff, so recovery costs simulated
        time like everything else.  ``sched=False`` skips the schedule
        point (the caller already crossed one for a batch of requests).
        """
        proc = self.comm.proc
        if sched:
            proc.schedule_point()
        policy = self.retry
        attempt = 0
        while True:
            issued_at = proc.clock
            try:
                result, done = issue(issued_at)
            except InjectedIOError:
                if policy is None or attempt >= policy.max_retries:
                    if policy is not None and policy.max_retries > 0:
                        self.fs.notify_recovery(
                            self.path, "giveup", node=self._node,
                            time=proc.clock, attempt=attempt, nbytes=nbytes,
                        )
                    raise
                attempt += 1
                proc.advance(policy.backoff(attempt))
                self.fs.notify_recovery(
                    self.path, "retry", node=self._node,
                    time=proc.clock, attempt=attempt, nbytes=nbytes,
                )
                continue
            if attempt > 0:
                self.fs.notify_recovery(
                    self.path, "recovered", node=self._node,
                    time=done, attempt=attempt, nbytes=nbytes,
                )
            if (
                policy is not None
                and policy.op_timeout > 0
                and done - issued_at > policy.op_timeout
            ):
                self.fs.notify_recovery(
                    self.path, "slow-op", node=self._node,
                    time=done, attempt=attempt, nbytes=nbytes,
                )
            proc.advance_to(done)
            return result

    # -- nonblocking post path (repro.aio) --------------------------------

    def _post_write(self, issue, nbytes: int) -> AioRequest:
        """Post ``issue`` to the rank's background flush service.

        The data is issued to the file system *now* (bytes land eagerly,
        identical to a blocking write), but the completion time is booked
        on the progress engine's drain timeline; the rank pays only the
        staging memcpy plus any backpressure wait.  Retries of transient
        failures run entirely on the drain timeline; an exhausted retry
        budget records the error on the returned request, to be raised
        when the request is waited on (drain / close / manifest barrier).
        """
        proc = self.comm.proc
        proc.schedule_point()
        eng = progress_engine(proc, self.aio)
        eng.reserve(nbytes, proc)
        proc.advance(self.comm.machine.memcpy_time(nbytes))
        issue_at = max(proc.clock, eng.clock)
        policy = self.retry
        attempt = 0
        error: BaseException | None = None
        while True:
            try:
                with self.fs.background_flush():
                    _result, done = issue(issue_at)
            except InjectedIOError as exc:
                if policy is None or attempt >= policy.max_retries:
                    if policy is not None and policy.max_retries > 0:
                        self.fs.notify_recovery(
                            self.path, "giveup", node=self._node,
                            time=issue_at, attempt=attempt, nbytes=nbytes,
                        )
                    error, done = exc, issue_at
                    break
                attempt += 1
                issue_at += policy.backoff(attempt)
                self.fs.notify_recovery(
                    self.path, "retry", node=self._node,
                    time=issue_at, attempt=attempt, nbytes=nbytes,
                )
                continue
            if attempt > 0:
                self.fs.notify_recovery(
                    self.path, "recovered", node=self._node,
                    time=done, attempt=attempt, nbytes=nbytes,
                )
            break
        req = eng.post(AioRequest(
            path=self.path, nbytes=nbytes, done_time=done, error=error
        ))
        self._last_posted = req
        self._post_seq += 1
        return req

    def _drain_pending(self) -> None:
        """Complete this rank's outstanding posts (reads must observe
        every prior write's completion time, not just its bytes)."""
        proc = self.comm.proc
        eng = progress_engine(proc, self.aio)
        eng.drain(proc)

    # -- contiguous primitives -------------------------------------------

    def read_contig(self, offset: int, nbytes: int) -> bytes:
        """Blocking contiguous read; advances the rank's clock."""
        self._check_open()
        if self.aio is not None:
            self._drain_pending()

        def issue(ready_time):
            return self.fs.read(
                self.path, offset, nbytes, node=self._node, ready_time=ready_time
            )

        return self._issue(issue, nbytes)

    def write_contig(self, offset: int, data) -> int:
        """Blocking contiguous write; advances the rank's clock."""
        self._check_open()
        buf = as_byte_view(data)

        def issue(ready_time):
            done = self.fs.write(
                self.path, offset, buf, node=self._node, ready_time=ready_time
            )
            return len(buf), done

        if self.aio is not None:
            self._post_write(issue, len(buf))
            return len(buf)
        return self._issue(issue, len(buf))

    def write_vector(self, ops) -> int:
        """Issue N contiguous writes with ONE schedule-point crossing.

        ``ops`` is a sequence of ``(offset, data)`` pairs.  The same bytes
        land at the same offsets as N :meth:`write_contig` calls and each
        request is chained through the retry engine individually, but the
        rank crosses the scheduler once for the whole batch -- at scale, a
        grid file's worth of array writes costs one context-switch round
        instead of one per array.  Only used on scale-mode paths; the
        pinned-digest strategies keep per-request scheduling.
        """
        self._check_open()
        bufs = [(off, as_byte_view(data)) for off, data in ops]
        total = sum(len(b) for _, b in bufs)
        if self.aio is not None:
            # The async path already costs only a staging memcpy per post.
            for off, b in bufs:
                self.write_contig(off, b)
            return total
        self.comm.proc.schedule_point()
        for off, b in bufs:
            def issue(ready_time, off=off, b=b):
                done = self.fs.write(
                    self.path, off, b, node=self._node, ready_time=ready_time
                )
                return len(b), done

            self._issue(issue, len(b), sched=False)
        return total

    def read_list(self, segments: list[tuple[int, int]]) -> bytes:
        """One list-I/O read request covering all ``segments``."""
        self._check_open()
        if self.aio is not None:
            self._drain_pending()
        total = sum(n for _, n in segments)

        def issue(ready_time):
            return self.fs.read_list(
                self.path, segments, node=self._node, ready_time=ready_time
            )

        return self._issue(issue, total)

    def write_list(self, segments: list[tuple[int, int]], data) -> int:
        """One list-I/O write request covering all ``segments``."""
        self._check_open()
        buf = as_byte_view(data)

        def issue(ready_time):
            done = self.fs.write_list(
                self.path, segments, buf, node=self._node, ready_time=ready_time
            )
            return len(buf), done

        if self.aio is not None:
            self._post_write(issue, len(buf))
            return len(buf)
        return self._issue(issue, len(buf))

    # -- explicit nonblocking primitives ----------------------------------

    def iwrite_contig(self, offset: int, data) -> AioRequest:
        """Nonblocking contiguous write; returns a testable/waitable
        request.  Without an ``aio`` config this degrades to the blocking
        write and returns an already-completed request (legal MPI
        semantics for ``MPI_File_iwrite``)."""
        self._check_open()
        buf = as_byte_view(data)

        def issue(ready_time):
            done = self.fs.write(
                self.path, offset, buf, node=self._node, ready_time=ready_time
            )
            return len(buf), done

        if self.aio is not None:
            return self._post_write(issue, len(buf))
        self._issue(issue, len(buf))
        return AioRequest(
            path=self.path, nbytes=len(buf),
            done_time=self.comm.proc.clock, retired=True,
        )

    def iwrite_list(self, segments: list[tuple[int, int]], data) -> AioRequest:
        """Nonblocking list-I/O write; see :meth:`iwrite_contig`."""
        self._check_open()
        buf = as_byte_view(data)

        def issue(ready_time):
            done = self.fs.write_list(
                self.path, segments, buf, node=self._node, ready_time=ready_time
            )
            return len(buf), done

        if self.aio is not None:
            return self._post_write(issue, len(buf))
        self._issue(issue, len(buf))
        return AioRequest(
            path=self.path, nbytes=len(buf),
            done_time=self.comm.proc.clock, retired=True,
        )

    # -- metadata ------------------------------------------------------------

    def size(self) -> int:
        self._check_open()
        if self.aio is not None:
            self._drain_pending()
        return self.fs.file_size(self.path)

    def close(self) -> None:
        self._closed = True
