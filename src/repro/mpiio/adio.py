"""ADIO: the abstract I/O device layer (Thakur, Gropp, Lusk).

ROMIO is implemented portably on top of ADIO, a small set of contiguous
read/write primitives that each file system implements.  Everything clever
(file views, data sieving, two-phase collective I/O) lives above this layer
and is file-system independent -- exactly the structure we reproduce here.

:class:`ADIOFile` binds one rank to one file of a
:class:`~repro.pfs.base.FileSystem`: contiguous byte reads/writes at explicit
offsets, with the rank's virtual clock advanced to the operation's completion
(blocking POSIX-style semantics).
"""

from __future__ import annotations

import numpy as np

from ..mpi.comm import Comm
from ..pfs.base import FileSystem

__all__ = ["ADIOFile", "as_byte_view"]


def as_byte_view(data) -> memoryview:
    """Expose any buffer-ish object as a flat byte view (no copy)."""
    if isinstance(data, np.ndarray):
        return memoryview(np.ascontiguousarray(data)).cast("B")
    return memoryview(data).cast("B")


class ADIOFile:
    """Per-rank handle for raw contiguous file access with timing."""

    def __init__(self, fs: FileSystem, path: str, comm: Comm):
        self.fs = fs
        self.path = path
        self.comm = comm
        self._closed = False

    @property
    def _node(self) -> int:
        world_rank = self.comm.group[self.comm.rank]
        return self.comm.machine.node_of(world_rank)

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"I/O on closed file {self.path!r}")

    # -- contiguous primitives -------------------------------------------

    def read_contig(self, offset: int, nbytes: int) -> bytes:
        """Blocking contiguous read; advances the rank's clock."""
        self._check_open()
        proc = self.comm.proc
        proc.schedule_point()
        data, done = self.fs.read(
            self.path, offset, nbytes, node=self._node, ready_time=proc.clock
        )
        proc.advance_to(done)
        return data

    def write_contig(self, offset: int, data) -> int:
        """Blocking contiguous write; advances the rank's clock."""
        self._check_open()
        buf = as_byte_view(data)
        proc = self.comm.proc
        proc.schedule_point()
        done = self.fs.write(
            self.path, offset, buf, node=self._node, ready_time=proc.clock
        )
        proc.advance_to(done)
        return len(buf)

    def read_list(self, segments: list[tuple[int, int]]) -> bytes:
        """One list-I/O read request covering all ``segments``."""
        self._check_open()
        proc = self.comm.proc
        proc.schedule_point()
        data, done = self.fs.read_list(
            self.path, segments, node=self._node, ready_time=proc.clock
        )
        proc.advance_to(done)
        return data

    def write_list(self, segments: list[tuple[int, int]], data) -> int:
        """One list-I/O write request covering all ``segments``."""
        self._check_open()
        buf = as_byte_view(data)
        proc = self.comm.proc
        proc.schedule_point()
        done = self.fs.write_list(
            self.path, segments, buf, node=self._node, ready_time=proc.clock
        )
        proc.advance_to(done)
        return len(buf)

    # -- metadata ------------------------------------------------------------

    def size(self) -> int:
        self._check_open()
        return self.fs.file_size(self.path)

    def close(self) -> None:
        self._closed = True
