"""Two-phase collective I/O (Rosario/Bordawekar/Choudhary; Thakur et al.).

Collective read/write decomposes into an I/O phase and a communication
phase.  The aggregate byte range touched by all ranks is divided into *file
domains*, one per aggregator rank; aggregators perform large contiguous file
accesses over their domain while all ranks redistribute data so each piece
ends where the access pattern wants it.  The result: the file sees a few
large sequential requests instead of the many small interleaved requests a
(Block, Block, Block) decomposition would naively produce -- Figure 5 of the
paper.

The implementation processes domains in rounds of ``cb_buffer_size`` bytes
(ROMIO's collective buffer) and really moves the bytes through the
simulated interconnect, so both the timing *and* the data are faithful.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..mpi import collectives as coll
from ..mpi.comm import Comm
from .adio import ADIOFile, as_byte_view
from .hints import Hints

__all__ = ["collective_write", "collective_read", "aggregator_ranks", "file_domains"]


def aggregator_ranks(comm: Comm, hints: Hints) -> list[int]:
    """Choose the aggregator ranks (ROMIO: one per compute node by default).

    Cached on the communicator: the node scan is O(P) and every collective
    on every rank needs the same answer.
    """
    cached = getattr(comm, "_agg_ranks_cache", None)
    if cached is not None and cached[0] == hints.cb_nodes:
        return cached[1]
    if hints.cb_nodes is not None and (
        hints.cb_nodes == 0 or hints.cb_nodes >= comm.size
    ):
        aggs = list(range(comm.size))
    else:
        machine = comm.machine
        per_node: dict[int, list[int]] = {}
        for r in range(comm.size):
            node = machine.node_of(comm.group[r])
            per_node.setdefault(node, []).append(r)
        k = hints.cb_nodes if hints.cb_nodes is not None else 1
        aggs = []
        for node in sorted(per_node):
            aggs.extend(per_node[node][:k])
        aggs.sort()
    comm._agg_ranks_cache = (hints.cb_nodes, aggs)
    return aggs


def file_domains(
    lo: int, hi: int, aggregators: list[int], align: int
) -> dict[int, tuple[int, int]]:
    """Partition ``[lo, hi)`` evenly among aggregators, aligned if asked.

    Returns ``{agg_rank: (start, end)}``; domains may be empty for trailing
    aggregators when the range is small.
    """
    n = len(aggregators)
    total = hi - lo
    if n == 0 or total <= 0:
        return {a: (lo, lo) for a in aggregators}
    base = -(-total // n)  # ceil
    if align > 1:
        base = -(-base // align) * align
    out: dict[int, tuple[int, int]] = {}
    start = lo
    for a in aggregators:
        end = min(hi, start + base)
        out[a] = (start, end)
        start = end
    return out


class _SegmentIndex:
    """Sorted segments plus prefix sums for fast window intersection."""

    def __init__(self, segments: list[tuple[int, int]]):
        self.offs = [s[0] for s in segments]
        self.lens = [s[1] for s in segments]
        self.pos = [0] * (len(segments) + 1)  # cumulative data position
        for i, n in enumerate(self.lens):
            self.pos[i + 1] = self.pos[i] + n
        self.ends = [o + n for o, n in segments]

    @property
    def total(self) -> int:
        return self.pos[-1]

    def window(self, wlo: int, whi: int) -> list[tuple[int, int, int]]:
        """Pieces of my segments inside ``[wlo, whi)``.

        Returns ``(file_offset, length, data_position)`` triples in order.
        """
        out = []
        # First segment that could overlap: the one before the first with
        # offset >= wlo.
        i = bisect.bisect_left(self.offs, wlo)
        if i > 0 and self.ends[i - 1] > wlo:
            i -= 1
        while i < len(self.offs) and self.offs[i] < whi:
            a = max(self.offs[i], wlo)
            b = min(self.ends[i], whi)
            if a < b:
                out.append((a, b - a, self.pos[i] + (a - self.offs[i])))
            i += 1
        return out


def _exchange_plan(comm: Comm, segments: list[tuple[int, int]], hints: Hints):
    """Common setup for both directions of the two-phase exchange.

    Returns ``(aggs, my_domain, rounds, plan)`` where ``plan`` maps a
    round number to ``[(agg_rank, pieces)]`` covering *my* segments --
    precomputed in one O(segments) pass instead of intersecting every
    (aggregator, round) window against the segment index (O(P * rounds)
    probes per rank, the scaling wall at P >= 512).  ``my_domain`` is this
    rank's file domain, or ``None`` when it is not an aggregator; the full
    domain table is never materialised (it is O(P) per rank per collective
    and derivable from the uniform stride).
    """
    idx = _SegmentIndex(segments)
    my_lo = segments[0][0] if segments else None
    my_hi = segments[-1][0] + segments[-1][1] if segments else None
    extents = coll.allgather(comm, (my_lo, my_hi))
    los = [e[0] for e in extents if e[0] is not None]
    his = [e[1] for e in extents if e[1] is not None]
    if not los:
        return idx, None, None, 0, {}
    lo, hi = min(los), max(his)
    aggs = aggregator_ranks(comm, hints)
    # The domain tiling is uniform: file_domains strides [lo, hi) by the
    # same (aligned) base, truncating only trailing domains -- so the first
    # domain is the largest and any domain is pure arithmetic.
    stride = -(-(hi - lo) // len(aggs))
    if hints.cb_align > 1:
        stride = -(-stride // hints.cb_align) * hints.cb_align
    rounds = max(1, -(-min(stride, hi - lo) // hints.cb_buffer_size))
    i = bisect.bisect_left(aggs, comm.rank)
    if i < len(aggs) and aggs[i] == comm.rank:
        dstart = min(lo + i * stride, hi)
        my_domain = (dstart, min(dstart + stride, hi))
    else:
        my_domain = None
    plan = _piece_plan(idx, lo, stride, aggs, hints.cb_buffer_size)
    return idx, aggs, my_domain, rounds, plan


def _piece_plan(
    idx: _SegmentIndex, lo: int, stride: int, aggs: list[int], cb: int
) -> dict[int, list[tuple[int, list[tuple[int, int, int]]]]]:
    """Assign my segment pieces to their (round, aggregator) windows.

    ``file_domains`` tiles ``[lo, hi)`` with a uniform ``stride`` (the last
    domains may be truncated/empty), and each domain is processed in
    ``cb``-byte rounds -- so a byte at file offset ``o`` belongs to domain
    ``(o - lo) // stride`` and round ``(o - domain_start) // cb``, no
    searching required.  Walking the segments once and cutting them at
    domain and round boundaries yields, for every round, the same
    ``(offset, length, data_position)`` pieces per aggregator that probing
    ``idx.window`` over every window would -- in the same order, since
    segments are sorted.
    """
    plan: dict[int, dict[int, list[tuple[int, int, int]]]] = {}
    if idx.total == 0:
        return {}
    offs, lens, pos = idx.offs, idx.lens, idx.pos
    for i in range(len(offs)):
        a = offs[i]
        end = a + lens[i]
        p = pos[i]
        while a < end:
            di = (a - lo) // stride
            dstart = lo + di * stride
            r = (a - dstart) // cb
            cut = min(dstart + (r + 1) * cb, dstart + stride, end)
            plan.setdefault(r, {}).setdefault(di, []).append((a, cut - a, p))
            p += cut - a
            a = cut
    return {
        r: [(aggs[di], pieces) for di, pieces in sorted(by_dom.items())]
        for r, by_dom in plan.items()
    }


def collective_write(
    comm: Comm,
    adio: ADIOFile,
    segments: list[tuple[int, int]],
    data,
    hints: Hints,
) -> None:
    """Two-phase collective write.

    ``segments`` are this rank's absolute file byte runs (sorted, disjoint);
    ``data`` is one contiguous buffer of exactly their total length.
    Collective over ``comm``: every rank must call, possibly with no data.
    """
    buf = as_byte_view(data)
    idx, aggs, my_domain, rounds, plan = _exchange_plan(comm, segments, hints)
    if len(buf) != idx.total:
        raise ValueError(f"data has {len(buf)} bytes, segments need {idx.total}")
    if aggs is None:
        coll.barrier(comm)
        return
    for r in range(rounds):
        # Communication phase: ship my pieces of each aggregator's window.
        outbound = [None] * comm.size
        for a, pieces in plan.get(r, ()):
            outbound[a] = [
                (off, bytes(buf[p : p + ln])) for off, ln, p in pieces
            ]
        inbound = coll.alltoall(comm, outbound)
        # I/O phase: aggregators coalesce and write their window.
        if my_domain is not None:
            _write_window(comm, adio, inbound)
    coll.barrier(comm)


def _write_window(comm: Comm, adio: ADIOFile, inbound: list) -> None:
    """Coalesce received (offset, bytes) pieces and write contiguous runs."""
    pieces: list[tuple[int, bytes]] = []
    for msg in inbound:
        if msg:
            pieces.extend(msg)
    if not pieces:
        return
    pieces.sort(key=lambda p: p[0])
    run_off = pieces[0][0]
    run = bytearray(pieces[0][1])
    nbytes_assembled = len(run)
    for off, chunk in pieces[1:]:
        if off == run_off + len(run):
            run.extend(chunk)
        elif off < run_off + len(run):
            # Overlap between ranks' pieces: later piece wins (non-atomic
            # mode; ENZO never writes overlapping ranges).
            rel = off - run_off
            end = rel + len(chunk)
            if end <= len(run):
                run[rel:end] = chunk
            else:
                run[rel:] = chunk[: len(run) - rel]
                run.extend(chunk[len(run) - rel :])
        else:
            adio.write_contig(run_off, run)
            run_off, run = off, bytearray(chunk)
        nbytes_assembled += len(chunk)
    adio.write_contig(run_off, run)
    # Assembly memcpy cost for staging data through the collective buffer.
    comm.compute(comm.machine.memcpy_time(nbytes_assembled))


def collective_read(
    comm: Comm,
    adio: ADIOFile,
    segments: list[tuple[int, int]],
    hints: Hints,
) -> bytes:
    """Two-phase collective read; returns this rank's bytes, packed.

    Collective over ``comm``; ranks with no segments still participate.
    """
    idx, aggs, my_domain, rounds, plan = _exchange_plan(comm, segments, hints)
    out = bytearray(idx.total)
    if aggs is None:
        coll.barrier(comm)
        return bytes(out)
    for r in range(rounds):
        # Phase 1: every rank tells each aggregator which pieces it needs.
        requests = [None] * comm.size
        for a, pieces in plan.get(r, ()):
            requests[a] = [(off, ln) for off, ln, _ in pieces]
        wanted = coll.alltoall(comm, requests)
        # Phase 2 (I/O): aggregators read the union of requested pieces in
        # one pass over their window (coalesced runs), then serve replies.
        replies = [None] * comm.size
        if my_domain is not None:
            window_data = _read_window(comm, adio, wanted)
            for src, req in enumerate(wanted):
                if req:
                    replies[src] = [window_data[(off, ln)] for off, ln in req]
        answers = coll.alltoall(comm, replies)
        # Unpack what came back into my output buffer.
        for a, pieces in plan.get(r, ()):
            for (off, ln, pos), chunk in zip(pieces, answers[a]):
                out[pos : pos + ln] = chunk
    coll.barrier(comm)
    return bytes(out)


def _read_window(
    comm: Comm, adio: ADIOFile, wanted: list
) -> dict[tuple[int, int], bytes]:
    """Read the coalesced union of requested pieces; return piece lookup."""
    all_pieces: list[tuple[int, int]] = []
    for req in wanted:
        if req:
            all_pieces.extend(req)
    if not all_pieces:
        return {}
    all_pieces.sort()
    # Coalesce into runs.
    runs: list[tuple[int, int]] = []
    for off, ln in all_pieces:
        if runs and off <= runs[-1][0] + runs[-1][1]:
            prev_off, prev_len = runs[-1]
            runs[-1] = (prev_off, max(prev_off + prev_len, off + ln) - prev_off)
        else:
            runs.append((off, ln))
    run_data = {off: adio.read_contig(off, ln) for off, ln in runs}
    comm.compute(comm.machine.memcpy_time(sum(ln for _, ln in runs)))
    # Slice each requested piece out of its run.
    out: dict[tuple[int, int], bytes] = {}
    run_offs = [off for off, _ in runs]
    for off, ln in all_pieces:
        i = bisect.bisect_right(run_offs, off) - 1
        base = run_offs[i]
        out[(off, ln)] = run_data[base][off - base : off - base + ln]
    return out
