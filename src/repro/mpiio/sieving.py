"""Data sieving (Thakur, Gropp, Lusk -- "Data Sieving and Collective I/O in
ROMIO").

Independent I/O on a non-contiguous file view would naively issue one request
per segment.  Data sieving instead reads one large contiguous extent covering
many segments into a buffer and picks out (or patches in, for read-modify-
write writes) the useful pieces.  It trades extra bytes moved for far fewer
I/O requests -- a winning trade everywhere the per-request cost matters, and
the mechanism behind the paper's observation that MPI-IO *reads* beat HDF4 on
PVFS "because of the caching and ROMIO data-sieving techniques".
"""

from __future__ import annotations

import numpy as np

from .adio import ADIOFile, as_byte_view
from .hints import Hints

__all__ = ["sieve_read", "sieve_write", "plan_extents"]


def plan_extents(
    segments: list[tuple[int, int]], buffer_size: int, min_density: float
) -> list[tuple[int, int, int, int]]:
    """Group ordered segments into sieving extents.

    Returns ``(extent_offset, extent_length, first_seg, nsegs)`` tuples
    covering all segments in order.  Consecutive segments are greedily packed
    into one extent while it stays within ``buffer_size`` and its useful
    density stays at or above ``min_density``.
    """
    if buffer_size < 1:
        raise ValueError("buffer_size must be >= 1")
    out: list[tuple[int, int, int, int]] = []
    i = 0
    n = len(segments)
    while i < n:
        start_off = segments[i][0]
        end_off = start_off + segments[i][1]
        useful = segments[i][1]
        j = i + 1
        while j < n:
            seg_off, seg_len = segments[j]
            new_end = max(end_off, seg_off + seg_len)
            new_span = new_end - start_off
            if new_span > buffer_size:
                break
            new_useful = useful + seg_len
            if min_density > 0.0 and new_useful / new_span < min_density:
                break
            end_off, useful = new_end, new_useful
            j += 1
        out.append((start_off, end_off - start_off, i, j - i))
        i = j
    return out


def sieve_read(
    adio: ADIOFile,
    segments: list[tuple[int, int]],
    hints: Hints,
) -> bytes:
    """Read the bytes of ``segments`` (in offset order); returns them packed."""
    total = sum(n for _, n in segments)
    out = bytearray(total)
    pos = 0
    if not hints.ds_read:
        for off, length in segments:
            out[pos : pos + length] = adio.read_contig(off, length)
            pos += length
        return bytes(out)
    for ext_off, ext_len, first, nsegs in plan_extents(
        segments, hints.ind_rd_buffer_size, hints.ds_min_density
    ):
        buf = adio.read_contig(ext_off, ext_len)
        for off, length in segments[first : first + nsegs]:
            rel = off - ext_off
            out[pos : pos + length] = buf[rel : rel + length]
            pos += length
    if pos != total:
        raise AssertionError("sieve_read failed to cover all segments")
    return bytes(out)


def sieve_write(
    adio: ADIOFile,
    segments: list[tuple[int, int]],
    data,
    hints: Hints,
) -> int:
    """Write ``data`` into ``segments`` (in offset order).

    A sieved extent is read, patched with the useful pieces, and written
    back in one request (ROMIO's read-modify-write write sieving; atomicity
    across concurrent writers is the caller's concern, as in ROMIO's
    default non-atomic mode).  Single-segment extents skip the RMW.
    """
    data = as_byte_view(data)
    total = sum(n for _, n in segments)
    if len(data) != total:
        raise ValueError(f"data has {len(data)} bytes, segments need {total}")
    pos = 0
    if not hints.ds_write:
        for off, length in segments:
            adio.write_contig(off, data[pos : pos + length])
            pos += length
        return total
    for ext_off, ext_len, first, nsegs in plan_extents(
        segments, hints.ind_wr_buffer_size, hints.ds_min_density
    ):
        if nsegs == 1:
            off, length = segments[first]
            adio.write_contig(off, data[pos : pos + length])
            pos += length
            continue
        buf = bytearray(adio.read_contig(ext_off, ext_len))
        for off, length in segments[first : first + nsegs]:
            rel = off - ext_off
            buf[rel : rel + length] = data[pos : pos + length]
            pos += length
        adio.write_contig(ext_off, buf)
    if pos != total:
        raise AssertionError("sieve_write failed to cover all segments")
    return total
