"""File views: mapping logical datatype streams onto file byte ranges.

An MPI-IO file view is ``(disp, etype, filetype)``: the file is accessed as
if it consisted only of the bytes selected by tiling ``filetype`` from byte
``disp`` onward.  Offsets in the data-access calls count *etype units within
that stream*.  :func:`map_stream` converts a (stream offset, length) request
into absolute ``(file_offset, length)`` segments -- the single primitive the
independent and collective I/O paths both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mpi.datatypes import BYTE, Datatype

__all__ = ["FileView", "map_stream"]


@dataclass
class FileView:
    """One rank's window onto a file."""

    disp: int = 0
    etype: Datatype = BYTE
    filetype: Datatype = None  # defaults to the etype
    _segs: list = field(default=None, repr=False)  # filetype segments, cached

    def __post_init__(self) -> None:
        if self.filetype is None:
            self.filetype = self.etype
        if self.disp < 0:
            raise ValueError("negative displacement")
        if self.etype.size == 0:
            raise ValueError("etype must have nonzero size")
        if self.filetype.size % self.etype.size != 0:
            raise ValueError("filetype size must be a multiple of etype size")
        self._segs = self.filetype.segments()

    @property
    def is_contiguous(self) -> bool:
        """True when the view exposes the file as-is (modulo disp)."""
        segs = self._segs
        return (
            len(segs) == 1
            and segs[0] == (0, self.filetype.size)
            and self.filetype.size == self.filetype.extent
        )

    def byte_offset(self, offset_etypes: int) -> int:
        """Stream byte position of an etype-unit offset."""
        if offset_etypes < 0:
            raise ValueError("negative offset")
        return offset_etypes * self.etype.size

    def map_stream(self, stream_offset: int, nbytes: int) -> list[tuple[int, int]]:
        """Absolute file segments for stream bytes [offset, offset+nbytes)."""
        return map_stream(
            self._segs,
            self.filetype.size,
            self.filetype.extent,
            self.disp,
            stream_offset,
            nbytes,
        )


def map_stream(
    ft_segments: list[tuple[int, int]],
    ft_size: int,
    ft_extent: int,
    disp: int,
    stream_offset: int,
    nbytes: int,
) -> list[tuple[int, int]]:
    """Core view arithmetic, independent of the FileView object.

    ``ft_segments`` describe one filetype instance; the instance covers
    ``ft_size`` stream bytes and ``ft_extent`` file bytes.  Returns merged,
    offset-ordered absolute segments.
    """
    if stream_offset < 0 or nbytes < 0:
        raise ValueError("negative stream range")
    if nbytes == 0:
        return []
    if ft_size == 0:
        raise ValueError("cannot map through a zero-size filetype")
    out: list[tuple[int, int]] = []
    lo, hi = stream_offset, stream_offset + nbytes
    tile = lo // ft_size
    while tile * ft_size < hi:
        tile_base_stream = tile * ft_size
        tile_base_file = disp + tile * ft_extent
        pos = tile_base_stream  # stream position walking this tile's segments
        for seg_disp, seg_len in ft_segments:
            seg_lo, seg_hi = pos, pos + seg_len
            a, b = max(seg_lo, lo), min(seg_hi, hi)
            if a < b:
                file_off = tile_base_file + seg_disp + (a - seg_lo)
                if out and out[-1][0] + out[-1][1] == file_off:
                    out[-1] = (out[-1][0], out[-1][1] + (b - a))
                else:
                    out.append((file_off, b - a))
            pos = seg_hi
            if pos >= hi:
                break
        tile += 1
    return out
