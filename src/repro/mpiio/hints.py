"""MPI-IO hints (the ``MPI_Info`` knobs ROMIO understands).

Defaults follow ROMIO's documented values from the paper's era: 4 MiB
collective buffers, data sieving enabled for reads and (read-modify-write)
writes, one collective-buffering aggregator per compute node.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace as _dc_replace

__all__ = ["Hints"]


@dataclass
class Hints:
    """Tunable I/O strategy knobs, one instance per open file."""

    # Two-phase collective buffering.
    cb_buffer_size: int = 4 * 1024 * 1024
    #: aggregators per node; None = one per node (ROMIO's cb_config_list default),
    #: 0 or >= nprocs = every rank aggregates.
    cb_nodes: int | None = None
    #: align file domains to this boundary (0 = no alignment; set to the
    #: file system stripe size to avoid lock/stripe thrash).
    cb_align: int = 0

    # Independent-I/O data sieving.
    ds_read: bool = True
    ds_write: bool = True
    ind_rd_buffer_size: int = 4 * 1024 * 1024
    ind_wr_buffer_size: int = 512 * 1024
    #: sieve only when the useful fraction of the sieved extent is at least
    #: this (0 disables the density check, always sieve).
    ds_min_density: float = 0.0

    #: use list I/O for non-contiguous independent access instead of data
    #: sieving: the whole access list travels in one request (PVFS listio).
    use_listio: bool = False

    #: write-behind buffering for independent contiguous writes (0 = off):
    #: consecutive small writes accumulate client-side and flush as one
    #: large request at this size, on a seek, or at close (the two-stage
    #: write-behind scheme of Liao et al.).
    wb_buffer_size: int = 0

    #: application-specific stripe size to request from the file system at
    #: create time (0 = keep the volume default); honoured by file systems
    #: that support per-file layouts (the paper's suggested FS extension).
    striping_unit: int = 0

    #: number of servers to stripe the file over at create time (0 = keep
    #: the volume default); Lustre's ``lfs setstripe -c`` knob, ignored by
    #: file systems whose server count is fixed.
    striping_factor: int = 0

    def replace(self, **changes) -> "Hints":
        """A validated copy with ``changes`` applied (MPI_Info_set-style)."""
        return _dc_replace(self, **changes).validate()

    def to_info(self) -> dict:
        """The knobs as a flat ``MPI_Info``-like dict (JSON-friendly)."""
        info = asdict(self)
        info["cb_nodes"] = -1 if self.cb_nodes is None else self.cb_nodes
        return info

    def validate(self) -> "Hints":
        if self.cb_buffer_size < 1:
            raise ValueError("cb_buffer_size must be >= 1")
        if self.ind_rd_buffer_size < 1 or self.ind_wr_buffer_size < 1:
            raise ValueError("sieving buffer sizes must be >= 1")
        if self.cb_nodes is not None and self.cb_nodes < 0:
            raise ValueError("cb_nodes must be >= 0")
        if not 0.0 <= self.ds_min_density <= 1.0:
            raise ValueError("ds_min_density must be within [0, 1]")
        if self.cb_align < 0:
            raise ValueError("cb_align must be >= 0")
        if self.striping_unit < 0:
            raise ValueError("striping_unit must be >= 0")
        if self.striping_factor < 0:
            raise ValueError("striping_factor must be >= 0")
        if self.wb_buffer_size < 0:
            raise ValueError("wb_buffer_size must be >= 0")
        return self
