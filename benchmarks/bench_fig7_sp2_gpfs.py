"""Figure 7: ENZO I/O performance on the IBM SP with GPFS.

Paper content: on the SP, the optimised MPI-IO implementation performs
*worse* than the original HDF4 I/O.  The causes the paper names -- the
application's many smaller-than-stripe accesses against GPFS's "very large,
fixed striping size", write-token conflicts on the shared file, and the
long per-node I/O request queue when many processors of one SMP node do
I/O -- are all present in the GPFS model.  Expected shape: MPI-IO write
clearly slower than HDF4 write, reads comparable-to-worse, and the penalty
shrinking for the larger problem size ("for larger problem size ... this
situation can be meliorated in some degree").
"""

import pytest

from repro.bench import build_initial_workload, build_workload, run_checkpoint_experiment
from repro.topology import ibm_sp2

from .conftest import FULL, PROBLEM, STRATEGIES, run_figure_point

PROCS = [32, 64] if FULL else [32]


@pytest.fixture(scope="session")
def initial_workload():
    return build_initial_workload(PROBLEM)


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("strategy", ["hdf4", "mpi-io"])
def test_fig7_sp2_gpfs(benchmark, workload, initial_workload, nprocs, strategy):
    run_figure_point(
        benchmark,
        "fig7-ibmsp-gpfs",
        ibm_sp2,
        nprocs,
        strategy,
        workload,
        read_hierarchy=initial_workload,
    )


def test_fig7_shape_mpiio_loses_on_write(workload, initial_workload):
    """The inverted result: shared-file MPI-IO writes lose on GPFS."""
    results = {}
    for name in ("hdf4", "mpi-io"):
        results[name] = run_checkpoint_experiment(
            ibm_sp2(nprocs=32),
            STRATEGIES[name](),
            workload,
            nprocs=32,
            read_hierarchy=initial_workload,
        )
    assert results["mpi-io"].write_time > results["hdf4"].write_time


def test_fig7_shape_token_thrash_is_the_mechanism(workload):
    """Token revocations happen for the shared file, not for HDF4's files."""
    m = ibm_sp2(nprocs=32)
    run_checkpoint_experiment(
        m, STRATEGIES["mpi-io"](), workload, nprocs=32, do_read=False
    )
    mpiio_revocations = m.fs.token_revocations
    m2 = ibm_sp2(nprocs=32)
    run_checkpoint_experiment(
        m2, STRATEGIES["hdf4"](), workload, nprocs=32, do_read=False
    )
    hdf4_revocations = m2.fs.token_revocations
    assert mpiio_revocations > 10 * max(hdf4_revocations, 1)


def test_fig7_shape_larger_problem_meliorates(workload):
    """AMR128's larger requests amortise the fixed token/queue costs."""
    small = build_workload("AMR16")
    big = build_workload("AMR32")

    def ratio(h):
        times = {}
        for name in ("hdf4", "mpi-io"):
            times[name] = run_checkpoint_experiment(
                ibm_sp2(nprocs=32), STRATEGIES[name](), h, nprocs=32,
                do_read=False,
            ).write_time
        return times["mpi-io"] / times["hdf4"]

    assert ratio(big) < ratio(small)
