"""Figure 10: HDF5 I/O versus MPI-IO write performance on the Origin2000.

Paper content: parallel HDF5, although it sits on MPI-IO, writes much more
slowly than the direct MPI-IO implementation, because of (1) internal
synchronisation at every dataset create/close, (2) metadata stored in the
data file causing misalignment and small interleaved metadata writes,
(3) recursive hyperslab packing, and (4) rank-0-only attribute writes.

Expected shape: HDF5 write several times slower than MPI-IO write at every
processor count; ablating the per-dataset overheads (cheap H5Costs) closes
most of the gap, demonstrating the mechanisms.
"""

import pytest

from repro.bench import run_checkpoint_experiment
from repro.topology import origin2000

from .conftest import FULL, STRATEGIES, run_figure_point

PROCS = [4, 8, 16] if FULL else [4, 16]


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("strategy", ["mpi-io", "hdf5"])
def test_fig10_hdf5_vs_mpiio_write(benchmark, workload, nprocs, strategy):
    run_figure_point(
        benchmark,
        "fig10-hdf5-vs-mpiio",
        origin2000,
        nprocs,
        strategy,
        workload,
        do_read=False,
    )


def test_fig10_shape_hdf5_much_worse(workload):
    results = {}
    for name in ("mpi-io", "hdf5"):
        results[name] = run_checkpoint_experiment(
            origin2000(nprocs=8), STRATEGIES[name](), workload, nprocs=8,
            do_read=False,
        )
    assert results["hdf5"].write_time > 2.0 * results["mpi-io"].write_time


def test_fig10_mechanism_dataset_overheads(workload):
    """With the library's per-dataset costs ablated, HDF5 approaches MPI-IO.

    This isolates the paper's explanation: the gap is library overhead
    (create/close sync, metadata writes, packing), not the data path.
    """
    from repro.enzo import HDF5Strategy
    from repro.hdf5 import H5Costs

    stock = run_checkpoint_experiment(
        origin2000(nprocs=8), HDF5Strategy(), workload, nprocs=8, do_read=False
    )
    free_costs = H5Costs(
        dataset_create=0.0,
        dataset_close=0.0,
        attribute_write=0.0,
        pack_per_run=0.0,
        open_close=0.0,
    )
    ablated = run_checkpoint_experiment(
        origin2000(nprocs=8),
        HDF5Strategy(costs=free_costs),
        workload,
        nprocs=8,
        do_read=False,
    )
    assert ablated.write_time < 0.6 * stock.write_time
