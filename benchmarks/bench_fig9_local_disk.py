"""Figure 9: ENZO I/O on Chiba City using node-local disks (PVFS interface).

Paper content: with every compute node doing I/O to its own local disk, the
compute-node/I-O-node Ethernet disappears from the data path; "the MPI-IO
has much better overall performance than the HDF4 sequential I/O and it
scales well with the number of processors" -- at the price of distributed
output files needing later integration.

Expected shape: MPI-IO clearly faster than HDF4 and its write time falling
as processors are added; HDF4 flat or worsening (everything still funnels
through processor 0's single disk and the Ethernet gather).
"""

import pytest

from repro.bench import (
    build_initial_workload,
    run_checkpoint_experiment,
)
from repro.topology import chiba_city_local

from .conftest import FULL, PROBLEM, STRATEGIES, run_figure_point

PROCS = [2, 4, 8] if FULL else [2, 8]


@pytest.fixture(scope="session")
def initial_workload():
    return build_initial_workload(PROBLEM)


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("strategy", ["hdf4", "mpi-io"])
def test_fig9_local_disk(benchmark, workload, initial_workload, nprocs, strategy):
    run_figure_point(
        benchmark,
        "fig9-chiba-localdisk",
        lambda n: chiba_city_local(8),
        nprocs,
        strategy,
        workload,
        read_hierarchy=initial_workload,
    )


def test_fig9_shape_mpiio_much_better(workload, initial_workload):
    results = {}
    for name in ("hdf4", "mpi-io"):
        results[name] = run_checkpoint_experiment(
            chiba_city_local(8), STRATEGIES[name](), workload, nprocs=8,
            read_hierarchy=initial_workload,
        )
    # Writes win at every size (strongly so at AMR64+, where data dwarfs
    # per-request overheads); reads win by a wide margin at all sizes
    # because HDF4 funnels every byte through P0's single disk + Ethernet.
    assert results["mpi-io"].write_time < results["hdf4"].write_time
    assert results["mpi-io"].read_time < 0.7 * results["hdf4"].read_time


def test_fig9_shape_mpiio_scales_with_procs(workload):
    def write_time(nprocs):
        return run_checkpoint_experiment(
            chiba_city_local(8), STRATEGIES["mpi-io"](), workload,
            nprocs=nprocs, do_read=False,
        ).write_time

    assert write_time(8) < write_time(2)


def test_fig9_output_needs_integration(workload):
    """The paper's caveat: pieces land on each node's private disk."""
    m = chiba_city_local(8)
    run_checkpoint_experiment(
        m, STRATEGIES["mpi-io"](), workload, nprocs=8, do_read=False
    )
    placement = m.fs.files_needing_integration()
    assert len(placement) >= 1  # files distributed across private disks
