"""Ablations of the design choices the paper discusses.

Each ablation turns one optimisation off (or one file-system mismatch on)
and checks the direction of the effect:

* collective two-phase I/O vs naive independent strided writes;
* data sieving on vs off for strided independent reads;
* single shared file vs file-per-grid (HDF4-style) on GPFS tokens;
* stripe-aligned collective file domains (``cb_align``) vs unaligned --
  the paper's closing suggestion that file systems and MPI-IO should agree
  on "flexible, application-specific disk file striping".
"""

import numpy as np
import pytest

from repro.bench import run_checkpoint_experiment
from repro.enzo import MPIIOStrategy
from repro.mpi import run_spmd
from repro.mpi.datatypes import FLOAT64, Subarray
from repro.mpiio import File, Hints
from repro.topology import ibm_sp2, origin2000

from .conftest import record_result


def block_bounds(n, parts, i):
    base, rem = divmod(n, parts)
    lo = i * base + min(i, rem)
    return lo, base + (1 if i < rem else 0)


def strided_write_program(comm, collective: bool, hints: Hints):
    """Each rank writes a (1, Block, 1) slab of a 3-D array: heavily strided."""
    shape = (32, 32, 32)
    lo, n = block_bounds(shape[1], comm.size, comm.rank)
    ftype = Subarray(shape, (shape[0], n, shape[2]), (0, lo, 0), FLOAT64)
    fh = File.open(comm, "ablate", "w", hints=hints)
    fh.set_view(0, FLOAT64, ftype)
    data = np.full((shape[0], n, shape[2]), float(comm.rank))
    t0 = comm.clock
    if collective:
        fh.write_all(data)
    else:
        fh.write(data)
    elapsed = comm.clock - t0
    fh.close()
    return elapsed


@pytest.mark.parametrize("collective", [True, False])
def test_ablation_collective_vs_independent(benchmark, collective):
    machine = origin2000(nprocs=8)
    hints = Hints(ds_write=False)

    def once():
        res = run_spmd(
            machine, strided_write_program, nprocs=8, args=(collective, hints)
        )
        return max(res.results)

    elapsed = benchmark.pedantic(once, rounds=1, iterations=1)
    record_result(
        "ablation-collective",
        strategy="two-phase" if collective else "independent",
        nprocs=8,
        write_s=elapsed,
        read_s=0.0,
    )
    benchmark.extra_info["sim_write_s"] = round(elapsed, 4)


def test_ablation_collective_wins_on_strided_pattern():
    def run(collective):
        machine = origin2000(nprocs=8)
        res = run_spmd(
            machine,
            strided_write_program,
            nprocs=8,
            args=(collective, Hints(ds_write=False)),
        )
        return max(res.results)

    assert run(True) < run(False)


def test_ablation_data_sieving_wins_on_strided_reads():
    def run(ds_read):
        machine = origin2000(nprocs=4)

        def program(comm):
            shape = (32, 32, 32)
            hints = Hints(ds_read=ds_read)
            if comm.rank == 0:
                fh = File.open(comm.split(0 if comm.rank == 0 else None),
                               "f", "w")
                fh.write_at(0, np.zeros(int(np.prod(shape))))
                fh.close()
            else:
                comm.split(None)
            from repro.mpi import collectives as coll

            coll.barrier(comm)
            machine.fs.reset_timing()
            lo, n = block_bounds(shape[1], comm.size, comm.rank)
            ftype = Subarray(shape, (shape[0], n, shape[2]), (0, lo, 0), FLOAT64)
            fh = File.open(comm, "f", "r", hints=hints)
            fh.set_view(0, FLOAT64, ftype)
            t0 = comm.clock
            fh.read(np.empty((shape[0], n, shape[2])))
            elapsed = comm.clock - t0
            fh.close()
            return elapsed

        return max(run_spmd(machine, program, nprocs=4).results)

    assert run(True) < run(False)


def test_ablation_shared_file_vs_file_per_grid_on_gpfs(benchmark):
    """On GPFS, HDF4's file-per-grid sidesteps the shared-write tokens;
    forcing the MPI-IO strategy's shared file pays them.  (The paper's
    explanation of Figure 7 in one experiment.)"""
    from repro.bench import build_workload

    h = build_workload("AMR16")

    def once():
        m_shared = ibm_sp2(nprocs=32)
        shared = run_checkpoint_experiment(
            m_shared, MPIIOStrategy(), h, nprocs=32, do_read=False
        )
        return m_shared.fs.token_revocations, shared.write_time

    revocations, write_time = benchmark.pedantic(once, rounds=1, iterations=1)
    assert revocations > 0
    record_result(
        "ablation-shared-file-gpfs",
        strategy="shared-file",
        nprocs=32,
        write_s=write_time,
        read_s=0.0,
    )


def test_ablation_stripe_aligned_domains_reduce_token_traffic():
    """cb_align = stripe size keeps each domain's stripes on one owner."""
    from repro.bench import build_workload

    h = build_workload("AMR16")

    def revocations(align):
        m = ibm_sp2(nprocs=32)
        hints = Hints(cb_align=align)
        run_checkpoint_experiment(
            m, MPIIOStrategy(hints=hints), h, nprocs=32, do_read=False
        )
        return m.fs.token_revocations

    aligned = revocations(256 * 1024)
    unaligned = revocations(0)
    assert aligned <= unaligned


def test_ablation_listio_vs_sieving_on_pvfs():
    """PVFS list I/O: the access list travels in one request, so strided
    independent access beats both naive per-segment I/O and RMW sieving
    when per-request (iod) costs dominate -- the successor optimisation to
    this paper from the same group."""
    from repro.topology import chiba_city

    def strided_write(comm, hints):
        shape = (32, 32)
        n = shape[1] // comm.size
        lo = comm.rank * n
        ftype = Subarray(shape, (shape[0], n), (0, lo), FLOAT64)
        fh = File.open(comm, "lio", "w", hints=hints)
        fh.set_view(0, FLOAT64, ftype)
        t0 = comm.clock
        fh.write(np.full((shape[0], n), 1.0))
        elapsed = comm.clock - t0
        fh.close()
        return elapsed

    def run(hints):
        machine = chiba_city(8)
        res = run_spmd(machine, strided_write, nprocs=8, args=(hints,))
        return max(res.results)

    t_naive = run(Hints(ds_write=False))
    t_listio = run(Hints(use_listio=True))
    assert t_listio < t_naive


def test_ablation_listio_fewer_requests():
    from repro.topology import chiba_city

    def strided_write(comm, hints):
        shape = (32, 32)
        n = shape[1] // comm.size
        lo = comm.rank * n
        ftype = Subarray(shape, (shape[0], n), (0, lo), FLOAT64)
        fh = File.open(comm, "lio", "w", hints=hints)
        fh.set_view(0, FLOAT64, ftype)
        fh.write(np.full((shape[0], n), 1.0))
        fh.close()

    m1 = chiba_city(8)
    run_spmd(m1, strided_write, nprocs=8, args=(Hints(use_listio=True),))
    m2 = chiba_city(8)
    run_spmd(m2, strided_write, nprocs=8, args=(Hints(ds_write=False),))
    assert m1.fs.counters.writes < m2.fs.counters.writes / 4


def test_ablation_write_behind_buffering():
    """Liao et al.'s write-behind: small sequential independent writes
    coalesce client-side into large flushes."""

    def sequential_small_writes(comm, hints):
        fh = File.open(comm, "wb", "w", hints=hints)
        fh.seek(comm.rank * 65536)
        t0 = comm.clock
        for _ in range(64):
            fh.write(b"x" * 1024)
        fh.close()
        return comm.clock - t0

    def run(wb):
        machine = origin2000(nprocs=4)
        res = run_spmd(
            machine, sequential_small_writes, nprocs=4,
            args=(Hints(wb_buffer_size=wb),),
        )
        return max(res.results), machine.fs.counters.writes

    t_buffered, reqs_buffered = run(1 << 20)
    t_direct, reqs_direct = run(0)
    assert reqs_buffered < reqs_direct / 8
    assert t_buffered <= t_direct


def test_ablation_hdf5_alignment_fixes_misalignment():
    """H5Pset_alignment (the later remedy for the paper's complaint #2):
    stripe-aligned dataset data no longer straddles stripe boundaries."""
    import numpy as np

    from repro.hdf5 import H5Costs, H5File

    def dataset_offsets(alignment):
        machine = origin2000(nprocs=1)

        def program(comm):
            f = H5File.create(
                comm, "h5", driver="sec2",
                costs=H5Costs(alignment=alignment),
            )
            offs = []
            for i in range(4):
                d = f.create_dataset(f"d{i}", (512,), np.float64)
                offs.append(d.header.data_offset)
                d.write(np.zeros(512), collective=False)
                d.close()
            f.close()
            return offs

        return run_spmd(machine, program, nprocs=1).results[0]

    stripe = 1 << 20
    aligned = dataset_offsets(stripe)
    stock = dataset_offsets(0)
    assert all(off % stripe == 0 for off in aligned)
    assert any(off % stripe != 0 for off in stock)


def test_ablation_initial_read_vs_restart_read():
    """The paper's two read paths differ in structure: the new-simulation
    read partitions every grid among all processors, while the restart
    read hands whole subgrids out round-robin.  Under HDF4 the initial
    read funnels every byte through P0 and must be the slower of the two;
    the parallel strategy reads both ways at full width."""
    from repro.bench import build_initial_workload

    h = build_initial_workload("AMR32")

    def read_time(strategy, read_op):
        m = origin2000(nprocs=8)
        return run_checkpoint_experiment(
            m, strategy, h, nprocs=8, read_op=read_op
        ).read_time

    from repro.enzo import HDF4Strategy

    hdf4_initial = read_time(HDF4Strategy(), "initial")
    hdf4_restart = read_time(HDF4Strategy(), "restart")
    assert hdf4_initial >= hdf4_restart
    mpiio_initial = read_time(MPIIOStrategy(), "initial")
    assert mpiio_initial < hdf4_initial
