"""Figure 8: ENZO I/O performance on the Linux cluster with PVFS.

Paper content: with compute and I/O nodes joined by fast Ethernet, the
communication overhead dominates both implementations; MPI-IO's *read* is
"a little better than HDF4 read because of the caching and ROMIO
data-sieving techniques", and results improve for the larger problem size
(fewer repeated small-chunk accesses).

Expected shape here: both strategies Ethernet-bound and much slower than on
the other platforms; MPI-IO read better than HDF4 read; the MPI-IO/HDF4
ratio improving from AMR-small to AMR-large.
"""

import pytest

from repro.bench import (
    build_initial_workload,
    build_workload,
    run_checkpoint_experiment,
)
from repro.topology import chiba_city, origin2000

from .conftest import PROBLEM, STRATEGIES, run_figure_point


@pytest.fixture(scope="session")
def initial_workload():
    return build_initial_workload(PROBLEM)


@pytest.mark.parametrize("strategy", ["hdf4", "mpi-io"])
def test_fig8_chiba_pvfs(benchmark, workload, initial_workload, strategy):
    run_figure_point(
        benchmark,
        "fig8-chiba-pvfs",
        lambda nprocs: chiba_city(nprocs),
        8,
        strategy,
        workload,
        read_hierarchy=initial_workload,
    )


def test_fig8_shape_ethernet_dominates(workload, initial_workload):
    """Both strategies are far slower on PVFS/Ethernet than on Origin2000."""
    for name in ("hdf4", "mpi-io"):
        eth = run_checkpoint_experiment(
            chiba_city(8), STRATEGIES[name](), workload, nprocs=8,
            read_hierarchy=initial_workload,
        )
        o2k = run_checkpoint_experiment(
            origin2000(nprocs=8), STRATEGIES[name](), workload, nprocs=8,
            read_hierarchy=initial_workload,
        )
        assert eth.write_time > 1.5 * o2k.write_time
        assert eth.read_time > 1.5 * o2k.read_time


def test_fig8_shape_mpiio_read_beats_hdf4(workload, initial_workload):
    """MPI read a little better thanks to sieving + server caching."""
    results = {}
    for name in ("hdf4", "mpi-io"):
        results[name] = run_checkpoint_experiment(
            chiba_city(8), STRATEGIES[name](), workload, nprocs=8,
            read_hierarchy=initial_workload,
        )
    assert results["mpi-io"].read_time < results["hdf4"].read_time


def test_fig8_shape_larger_problem_relatively_better(workload):
    """'Results tend to be better for larger size of problem'."""
    small = build_workload("AMR16")
    big = build_workload("AMR32")

    def mb_per_sim_second(h):
        r = run_checkpoint_experiment(
            chiba_city(8), STRATEGIES["mpi-io"](), h, nprocs=8, do_read=False
        )
        return (r.bytes_written / 2**20) / r.write_time

    assert mb_per_sim_second(big) > mb_per_sim_second(small)
