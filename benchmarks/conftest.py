"""Shared benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper.  The
pytest-benchmark timer measures host wall-clock of the simulation; the
numbers that reproduce the paper are the *simulated* I/O times, which every
benchmark attaches to ``benchmark.extra_info`` and prints as a paper-style
series at the end of the session.

Environment knobs:

* ``REPRO_BENCH_PROBLEM`` -- workload size (default ``AMR32``; the paper's
  sizes ``AMR64``/``AMR128`` work too and take proportionally longer);
* ``REPRO_BENCH_FULL=1``  -- run the full processor-count matrix.
"""

import os

import pytest

from repro.bench import build_workload, run_checkpoint_experiment
from repro.enzo import HDF4Strategy, HDF5Strategy, MPIIOStrategy

PROBLEM = os.environ.get("REPRO_BENCH_PROBLEM", "AMR32")
FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

STRATEGIES = {
    "hdf4": HDF4Strategy,
    "mpi-io": MPIIOStrategy,
    "hdf5": HDF5Strategy,
}

_results: list[dict] = []


def record_result(figure: str, **fields) -> None:
    _results.append({"figure": figure, **fields})


@pytest.fixture(scope="session")
def workload():
    return build_workload(PROBLEM)


@pytest.fixture(scope="session")
def problem_name():
    return PROBLEM


def run_figure_point(
    benchmark, figure, machine_factory, nprocs, strategy_name, workload, **kw
):
    """One (machine, nprocs, strategy) data point of a figure.

    Runs the experiment once under the benchmark timer and records the
    simulated write/read times for the end-of-session table.
    """
    strategy = STRATEGIES[strategy_name]()

    def once():
        machine = machine_factory(nprocs)
        return run_checkpoint_experiment(
            machine, strategy, workload, nprocs=nprocs, **kw
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = figure
    benchmark.extra_info["problem"] = PROBLEM
    benchmark.extra_info["nprocs"] = nprocs
    benchmark.extra_info["strategy"] = strategy_name
    benchmark.extra_info["sim_write_s"] = round(result.write_time, 4)
    benchmark.extra_info["sim_read_s"] = round(result.read_time, 4)
    record_result(
        figure,
        problem=PROBLEM,
        nprocs=nprocs,
        strategy=strategy_name,
        write_s=result.write_time,
        read_s=result.read_time,
        mb_written=result.bytes_written / 2**20,
        mb_read=result.bytes_read / 2**20,
    )
    return result


def pytest_sessionfinish(session, exitstatus):
    if not _results:
        return
    from repro.core import format_table

    tp = session.config.pluginmanager.get_plugin("terminalreporter")
    out = tp.write_line if tp else print
    out("")
    out("=" * 72)
    out(f"Paper-series summary (simulated seconds, problem={PROBLEM})")
    out("=" * 72)
    by_figure: dict[str, list[dict]] = {}
    for r in _results:
        by_figure.setdefault(r["figure"], []).append(r)
    for figure in sorted(by_figure):
        rows = [
            [
                r.get("problem", ""),
                r.get("nprocs", ""),
                r.get("strategy", ""),
                f"{r['write_s']:.3f}" if "write_s" in r else "",
                f"{r['read_s']:.3f}" if "read_s" in r else "",
            ]
            for r in by_figure[figure]
        ]
        out("")
        out(f"--- {figure} ---")
        for line in format_table(
            ["problem", "P", "strategy", "write[s]", "read[s]"], rows
        ).splitlines():
            out(line)
