"""Figure 6: ENZO I/O performance on SGI Origin2000 with XFS.

Paper content: HDF4 (sequential, through processor 0) versus the optimised
MPI-IO implementation, read and write times over processor counts, for two
problem sizes.  Expected shape: MPI-IO beats HDF4 -- the ccNUMA interconnect
makes two-phase communication cheap, so collective I/O wins -- and the gap
grows (or MPI-IO's absolute time falls) with more processors, while HDF4
stays flat or degrades because everything funnels through one process.
"""

import pytest

from repro.bench import build_initial_workload
from repro.topology import origin2000

from .conftest import FULL, PROBLEM, run_figure_point

PROCS = [2, 4, 8, 16, 32] if FULL else [4, 16]


@pytest.fixture(scope="session")
def initial_workload():
    return build_initial_workload(PROBLEM)


@pytest.mark.parametrize("nprocs", PROCS)
@pytest.mark.parametrize("strategy", ["hdf4", "mpi-io"])
def test_fig6_origin2000(benchmark, workload, initial_workload, nprocs, strategy):
    run_figure_point(
        benchmark, "fig6-origin2000-xfs", origin2000, nprocs, strategy,
        workload, read_hierarchy=initial_workload,
    )


def test_fig6_shape_mpiio_wins(workload):
    """The headline claim: MPI-IO beats HDF4 on Origin2000 at scale."""
    from repro.bench import run_checkpoint_experiment

    from .conftest import STRATEGIES

    initial = build_initial_workload(PROBLEM)
    results = {}
    for name in ("hdf4", "mpi-io"):
        results[name] = run_checkpoint_experiment(
            origin2000(nprocs=16), STRATEGIES[name](), workload, nprocs=16,
            read_hierarchy=initial,
        )
    assert results["mpi-io"].write_time < results["hdf4"].write_time
    assert results["mpi-io"].read_time < results["hdf4"].read_time


def test_fig6_shape_mpiio_improves_with_procs(workload):
    """MPI-IO read time falls as processors are added; HDF4's does not."""
    from repro.bench import run_checkpoint_experiment

    from .conftest import STRATEGIES

    initial = build_initial_workload(PROBLEM)

    def read_time(name, nprocs):
        return run_checkpoint_experiment(
            origin2000(nprocs=nprocs), STRATEGIES[name](), workload,
            nprocs=nprocs, read_hierarchy=initial,
        ).read_time

    assert read_time("mpi-io", 16) < read_time("mpi-io", 2)
    # HDF4 is serialised through P0: more procs never help it much.
    assert read_time("hdf4", 16) > 0.8 * read_time("hdf4", 2)
