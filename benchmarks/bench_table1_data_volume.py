"""Table 1: amount of data read/written per problem size.

The paper's table reports the ENZO application's I/O volumes for AMR64,
AMR128 and AMR256.  The volumes follow from the workload structure, so this
benchmark computes them two ways and cross-checks:

* analytically, from :class:`repro.enzo.sizing.WorkloadModel`;
* empirically, by building the workload hierarchy and summing its arrays
  (for the sizes small enough to materialise quickly).

Expected shape (paper): roughly 8x growth per problem-size step, and the
cumulative write volume exceeding the initial-read volume.
"""

import numpy as np
import pytest

from repro.bench import build_workload
from repro.core import format_table
from repro.enzo import WorkloadModel, table1

from .conftest import record_result


def test_table1_analytic_volumes(benchmark):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    printable = [
        [r["problem"], f"{r['read_mb']:.1f}", f"{r['write_mb']:.1f}"]
        for r in rows
    ]
    print()
    print("Table 1 (analytic): data volume per problem size")
    print(format_table(["problem", "read [MB]", "write [MB]"], printable))
    for r in rows:
        record_result(
            "table1",
            problem=r["problem"],
            strategy="analytic",
            write_s=0.0,
            read_s=0.0,
            mb_read=r["read_mb"],
            mb_written=r["write_mb"],
        )
    # Paper shape: ~8x per step, writes > reads.
    for a, b in zip(rows, rows[1:]):
        assert 6 < b["read_mb"] / a["read_mb"] < 9
        assert 6 < b["write_mb"] / a["write_mb"] < 9
    for r in rows:
        assert r["write_mb"] > r["read_mb"]


@pytest.mark.parametrize("problem", ["AMR16", "AMR32", "AMR64"])
def test_table1_measured_checkpoint_volume(benchmark, problem):
    """Empirical check: a materialised hierarchy matches the byte model."""
    hierarchy = benchmark.pedantic(
        build_workload, args=(problem,), rounds=1, iterations=1
    )
    measured = hierarchy.total_data_nbytes()
    from repro.enzo import CheckpointLayout, HierarchyMeta

    layout = CheckpointLayout(HierarchyMeta.from_hierarchy(hierarchy))
    assert layout.total_nbytes == measured
    root_cells = int(np.prod(hierarchy.root.dims))
    model = WorkloadModel(root_dims=hierarchy.root.dims)
    # The analytic model's read volume uses an assumed refined fraction;
    # the measured hierarchy must land within a broad factor of it.
    assert 0.2 < measured / model.read_bytes() < 5.0
